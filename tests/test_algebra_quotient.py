"""Tests for the mutilation (quotient) construction of Section 2.4."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.monoid_ring import MonoidRing
from repro.algebra.properties import check_homomorphism, check_ideal, check_semiring_laws
from repro.algebra.quotient import is_downward_closed, without_zero
from repro.algebra.semirings import INTEGER_RING
from repro.algebra.structures import FunctionMonoid, Monoid

# A finite monoid with an absorbing zero: ({0, 1, 2, 3}, min) with zero = 0
# and identity = 3 (min(a, 3) = a on this carrier).
MIN_MONOID = Monoid(lambda a, b: min(a, b), 3, commutative=True, zero=0, name="min-0-3")
UNIVERSE = [0, 1, 2, 3]

FULL_RING = MonoidRing(INTEGER_RING, MIN_MONOID)
QUOTIENT = without_zero(INTEGER_RING, MIN_MONOID)


def full_elements():
    return st.dictionaries(
        st.sampled_from(UNIVERSE), st.integers(min_value=-2, max_value=2), max_size=3
    ).map(FULL_RING.element)


def quotient_elements():
    return st.dictionaries(
        st.sampled_from([1, 2, 3]), st.integers(min_value=-2, max_value=2), max_size=3
    ).map(QUOTIENT.element)


def test_downward_closure_of_nonzero_subset():
    assert is_downward_closed(MIN_MONOID, [1, 2, 3], UNIVERSE)


def test_non_downward_closed_subset_detected():
    # {3} is not downward closed: min(3, 3) = 3 is in the subset, which is fine,
    # but {2, 3} fails because min(2, 3) = 2 requires both 2 and 3 — still closed;
    # a genuinely failing case: {0} with universe {0,1}: 1*1=1 not in subset, fine;
    # take subset {1} in the additive monoid where 0+1 = 1 but 0 is not a member.
    additive = Monoid(lambda a, b: a + b, 0, commutative=True, name="N-add")
    assert not is_downward_closed(additive, [1], [0, 1])


@settings(max_examples=20, deadline=None)
@given(st.lists(quotient_elements(), min_size=1, max_size=3))
def test_quotient_ring_satisfies_ring_axioms(samples):
    check_semiring_laws(
        QUOTIENT.add,
        QUOTIENT.mul,
        QUOTIENT.zero(),
        QUOTIENT.one(),
        samples,
        neg=QUOTIENT.neg,
        commutative_mul=True,
    )


@settings(max_examples=20, deadline=None)
@given(st.lists(full_elements(), min_size=1, max_size=3))
def test_projection_is_a_ring_homomorphism(samples):
    """Lemma 2.9: restricting supports to G0 commutes with + and *."""
    check_homomorphism(
        phi=QUOTIENT.project,
        source_add=FULL_RING.add,
        source_mul=FULL_RING.mul,
        target_add=QUOTIENT.add,
        target_mul=QUOTIENT.mul,
        samples=samples,
    )


@settings(max_examples=20, deadline=None)
@given(st.lists(full_elements(), min_size=1, max_size=3), st.lists(st.integers(-2, 2), min_size=1, max_size=3))
def test_kernel_is_an_ideal(ring_samples, kernel_coefficients):
    """Lemma 2.11: the kernel (elements supported only on the zero) is a two-sided ideal."""
    kernel_samples = [FULL_RING.element({0: coefficient}) for coefficient in kernel_coefficients]
    check_ideal(
        ring_add=FULL_RING.add,
        ring_mul=FULL_RING.mul,
        ring_samples=ring_samples,
        ideal_membership=QUOTIENT.in_kernel,
        ideal_samples=kernel_samples,
    )


def test_projection_drops_only_excluded_support():
    element = FULL_RING.element({0: 5, 1: 1, 3: -2})
    projected = QUOTIENT.project(element)
    assert projected(0) == 0
    assert projected(1) == 1
    assert projected(3) == -2


def test_quotient_multiplication_discards_zero_products():
    # 1 * 2 = min(1, 2) = 1 stays; 1 * 0 would land on the removed zero.
    left = QUOTIENT.element({1: 1})
    right = QUOTIENT.element({2: 1})
    assert QUOTIENT.mul(left, right)(1) == 1
    # An element supported on the zero is normalized away on construction.
    assert QUOTIENT.element({0: 7}).is_zero()


def test_without_zero_requires_declared_zero():
    plain = Monoid(lambda a, b: a + b, 0, commutative=True)
    try:
        without_zero(INTEGER_RING, plain)
    except ValueError as error:
        assert "absorbing" in str(error)
    else:  # pragma: no cover - defensive
        raise AssertionError("expected ValueError")


def test_singleton_monoid_quotient_mirrors_gmr_construction():
    """The A[Sng] construction of Proposition 3.3: joining conflicting singletons yields 0."""
    monoid = FunctionMonoid()
    ring = without_zero(INTEGER_RING, monoid)
    left = ring.element({FunctionMonoid.singleton(A=1): 2})
    right_conflicting = ring.element({FunctionMonoid.singleton(A=2): 3})
    right_joining = ring.element({FunctionMonoid.singleton(B=5): 3})
    assert ring.mul(left, right_conflicting).is_zero()
    product = ring.mul(left, right_joining)
    assert product(FunctionMonoid.singleton(A=1, B=5)) == 6
