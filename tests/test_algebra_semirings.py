"""Unit and property tests for the coefficient (semi)rings."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algebra.properties import check_semiring_laws
from repro.algebra.semirings import (
    BOOLEAN_SEMIRING,
    BUILTIN_SEMIRINGS,
    FLOAT_FIELD,
    INTEGER_RING,
    MAX_PLUS,
    MIN_PLUS,
    NATURAL_SEMIRING,
    RATIONAL_FIELD,
    IntegerRing,
)

small_ints = st.integers(min_value=-6, max_value=6)
small_naturals = st.integers(min_value=0, max_value=6)
small_fractions = st.fractions(min_value=-4, max_value=4, max_denominator=5)
small_bools = st.booleans()


@given(st.lists(small_ints, min_size=1, max_size=4))
def test_integer_ring_axioms(samples):
    check_semiring_laws(
        INTEGER_RING.add, INTEGER_RING.mul, 0, 1, samples, neg=INTEGER_RING.neg, commutative_mul=True
    )


@given(st.lists(small_fractions, min_size=1, max_size=4))
def test_rational_field_axioms(samples):
    samples = [Fraction(value) for value in samples]
    check_semiring_laws(
        RATIONAL_FIELD.add,
        RATIONAL_FIELD.mul,
        Fraction(0),
        Fraction(1),
        samples,
        neg=RATIONAL_FIELD.neg,
        commutative_mul=True,
    )


@given(st.lists(small_bools, min_size=1, max_size=4))
def test_boolean_semiring_axioms(samples):
    check_semiring_laws(
        BOOLEAN_SEMIRING.add, BOOLEAN_SEMIRING.mul, False, True, samples, commutative_mul=True
    )


@given(st.lists(small_naturals, min_size=1, max_size=4))
def test_natural_semiring_axioms(samples):
    check_semiring_laws(
        NATURAL_SEMIRING.add, NATURAL_SEMIRING.mul, 0, 1, samples, commutative_mul=True
    )


@given(st.lists(st.integers(min_value=0, max_value=20).map(float), min_size=1, max_size=4))
def test_min_plus_semiring_axioms(samples):
    # Integer-valued floats keep tropical addition exactly associative.
    check_semiring_laws(
        MIN_PLUS.add,
        MIN_PLUS.mul,
        MIN_PLUS.zero,
        MIN_PLUS.one,
        samples,
        commutative_mul=True,
    )


def test_min_plus_identities():
    assert MIN_PLUS.add(3.0, MIN_PLUS.zero) == 3.0
    assert MIN_PLUS.mul(3.0, MIN_PLUS.one) == 3.0
    assert MIN_PLUS.add(3.0, 5.0) == 3.0
    assert MIN_PLUS.mul(3.0, 5.0) == 8.0


def test_max_plus_identities():
    assert MAX_PLUS.add(3.0, MAX_PLUS.zero) == 3.0
    assert MAX_PLUS.add(3.0, 5.0) == 5.0
    assert MAX_PLUS.mul(3.0, 5.0) == 8.0


def test_is_ring_flags():
    assert INTEGER_RING.is_ring
    assert RATIONAL_FIELD.is_ring
    assert FLOAT_FIELD.is_ring
    assert not BOOLEAN_SEMIRING.is_ring
    assert not NATURAL_SEMIRING.is_ring
    assert not MIN_PLUS.is_ring


def test_semiring_without_inverse_rejects_negation():
    with pytest.raises(TypeError):
        NATURAL_SEMIRING.neg(1)
    with pytest.raises(TypeError):
        BOOLEAN_SEMIRING.sub(True, True)


def test_natural_coerce_rejects_negatives():
    with pytest.raises(ValueError):
        NATURAL_SEMIRING.coerce(-1)


def test_coerce_normalizes_types():
    assert INTEGER_RING.coerce(True) == 1
    assert RATIONAL_FIELD.coerce(2) == Fraction(2)
    assert BOOLEAN_SEMIRING.coerce(3) is True


@given(small_ints)
def test_from_int_matches_python_integers(n):
    assert INTEGER_RING.from_int(n) == n
    assert RATIONAL_FIELD.from_int(n) == Fraction(n)


def test_from_int_on_semiring_rejects_negative():
    with pytest.raises(TypeError):
        NATURAL_SEMIRING.from_int(-2)


@given(st.lists(small_ints, max_size=5))
def test_sum_and_product_helpers(values):
    assert INTEGER_RING.sum(values) == sum(values)
    product = 1
    for value in values:
        product *= value
    assert INTEGER_RING.product(values) == product


@given(small_ints, st.integers(min_value=0, max_value=5))
def test_pow_helper(base, exponent):
    assert INTEGER_RING.pow(base, exponent) == base**exponent


def test_pow_rejects_negative_exponent():
    with pytest.raises(ValueError):
        INTEGER_RING.pow(2, -1)


def test_semiring_equality_is_by_name():
    assert IntegerRing() == INTEGER_RING
    assert IntegerRing() != RATIONAL_FIELD
    assert hash(IntegerRing()) == hash(INTEGER_RING)


def test_builtin_registry_contains_all_structures():
    assert set(BUILTIN_SEMIRINGS) == {"Z", "Q", "R-float", "B", "N", "min-plus", "max-plus"}


def test_repr_mentions_kind():
    assert "ring" in repr(INTEGER_RING)
    assert "semiring" in repr(BOOLEAN_SEMIRING)
