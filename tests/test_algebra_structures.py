"""Tests for the basic algebraic structures (monoids, groups) of Section 2.1/2.2."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algebra.properties import LawViolation, check_group, check_monoid
from repro.algebra.structures import (
    FunctionMonoid,
    Monoid,
    ProductMonoid,
    Semigroup,
    TupleConcatMonoid,
    integers_additive_group,
)

short_tuples = st.lists(st.integers(min_value=0, max_value=3), max_size=3).map(tuple)


def test_semigroup_combine():
    semigroup = Semigroup(lambda a, b: a + b, name="sum")
    assert semigroup.combine([1, 2, 3]) == 6
    assert semigroup.combine([], initial=10) == 10
    with pytest.raises(ValueError):
        semigroup.combine([])


@given(st.lists(short_tuples, min_size=1, max_size=4))
def test_tuple_concat_monoid_laws(samples):
    monoid = TupleConcatMonoid()
    check_monoid(monoid.op, monoid.identity, samples)


def test_tuple_concat_factorizations():
    monoid = TupleConcatMonoid()
    word = (1, 2, 3)
    splits = monoid.factorizations(word)
    assert ((), (1, 2, 3)) in splits
    assert ((1, 2), (3,)) in splits
    assert len(splits) == 4


def test_monoid_power():
    monoid = Monoid(lambda a, b: a + b, 0, commutative=True)
    assert monoid.power(3, 4) == 12
    assert monoid.power(3, 0) == 0
    with pytest.raises(ValueError):
        monoid.power(3, -1)


def test_monoid_is_identity():
    monoid = Monoid(lambda a, b: a * b, 1)
    assert monoid.is_identity(1)
    assert not monoid.is_identity(2)


@given(st.lists(st.tuples(st.integers(-3, 3), st.integers(0, 3)), min_size=1, max_size=4))
def test_product_monoid_laws(samples):
    product = ProductMonoid(
        [Monoid(lambda a, b: a + b, 0, commutative=True), Monoid(lambda a, b: max(a, b), 0, commutative=True)]
    )
    check_monoid(product.op, product.identity, samples, commutative=True)


def test_product_monoid_componentwise():
    product = ProductMonoid([Monoid(lambda a, b: a + b, 0), Monoid(lambda a, b: a * b, 1)])
    assert product.op((1, 2), (3, 4)) == (4, 8)
    assert product.identity == (0, 1)


def test_integers_additive_group_laws():
    group = integers_additive_group()
    check_group(group.op, group.identity, group.inverse, [-3, -1, 0, 2, 5])


def test_law_violation_reports_witnesses():
    bad = Monoid(lambda a, b: a - b, 0)  # subtraction is not associative
    with pytest.raises(LawViolation):
        check_monoid(bad.op, bad.identity, [1, 2, 3])


# ---------------------------------------------------------------------------
# The singleton-join monoid (Sng∅ of Section 3.1)
# ---------------------------------------------------------------------------


def test_function_monoid_join_consistent():
    monoid = FunctionMonoid()
    left = FunctionMonoid.singleton(A=1)
    right = FunctionMonoid.singleton(B=2)
    assert monoid.op(left, right) == FunctionMonoid.singleton(A=1, B=2)


def test_function_monoid_join_conflict_is_zero():
    monoid = FunctionMonoid()
    left = FunctionMonoid.singleton(A=1)
    right = FunctionMonoid.singleton(A=2)
    assert monoid.op(left, right) == FunctionMonoid.ZERO


def test_function_monoid_identity_and_zero():
    monoid = FunctionMonoid()
    element = FunctionMonoid.singleton(A=1, B=2)
    assert monoid.op(element, monoid.identity) == element
    assert monoid.op(monoid.zero, element) == FunctionMonoid.ZERO
    assert monoid.has_zero()


@given(
    st.lists(
        st.dictionaries(st.sampled_from(["A", "B", "C"]), st.integers(0, 2), max_size=2).map(
            lambda mapping: frozenset(mapping.items())
        ),
        min_size=1,
        max_size=4,
    )
)
def test_function_monoid_laws(samples):
    monoid = FunctionMonoid()
    check_monoid(monoid.op, monoid.identity, samples, commutative=True)
