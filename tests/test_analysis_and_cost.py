"""Tests for reporting helpers and the operation-counting instrumentation."""

import pytest

from repro.analysis.reporting import Table, format_markdown, format_table, scaling_exponent
from repro.compiler.compile import compile_query
from repro.compiler.cost import CountingSemiring, OperationCounter, RuntimeStatistics
from repro.compiler.runtime import TriggerRuntime
from repro.core.parser import parse
from repro.gmr.database import insert
from repro.gmr.relation import GMR
from repro.workloads.schemas import UNARY_SCHEMA


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------


def test_table_add_row_and_column():
    table = Table(["name", "value"], title="demo")
    table.add_row("a", 1)
    table.add_row("b", 2.5)
    assert table.column("value") == [1, 2.5]
    with pytest.raises(ValueError):
        table.add_row("only-one-cell")
    rendered = table.render()
    assert "demo" in rendered and "name" in rendered and "2.5" in rendered
    assert str(table) == rendered


def test_format_table_alignment_and_floats():
    text = format_table(["x", "cost"], [[1, 0.000123], [1000, 123456.0]])
    assert "1.230e-04" in text
    assert "1.235e+05" in text or "123456" in text
    lines = text.splitlines()
    assert len(lines) == 4


def test_format_markdown():
    markdown = format_markdown(["a", "b"], [[1, 2]], title="T")
    assert markdown.splitlines()[0] == "**T**"
    assert "| a | b |" in markdown
    assert "| 1 | 2 |" in markdown


def test_scaling_exponent_identifies_growth_rates():
    sizes = [100, 1000, 10000]
    assert scaling_exponent(sizes, [5.0, 5.0, 5.0]) == pytest.approx(0.0, abs=1e-9)
    assert scaling_exponent(sizes, [1.0, 10.0, 100.0]) == pytest.approx(1.0, abs=1e-9)
    assert scaling_exponent(sizes, [1.0, 100.0, 10000.0]) == pytest.approx(2.0, abs=1e-9)
    assert scaling_exponent([1], [1.0]) is None
    assert scaling_exponent([1, 1], [2.0, 2.0]) is None
    assert scaling_exponent([0, 10], [1.0, 2.0]) is None


# ---------------------------------------------------------------------------
# Operation counting
# ---------------------------------------------------------------------------


def test_operation_counter_arithmetic():
    counter = OperationCounter(additions=2, multiplications=3, negations=1)
    assert counter.total == 6
    later = OperationCounter(additions=5, multiplications=4, negations=1)
    difference = later - counter
    assert difference.additions == 3 and difference.multiplications == 1
    snapshot = counter.snapshot()
    counter.reset()
    assert counter.total == 0 and snapshot.total == 6
    assert "+=" in repr(snapshot) or "+" in repr(snapshot)


def test_counting_semiring_counts_gmr_operations():
    counting = CountingSemiring()
    left = GMR.from_tuples(("A",), [(1,), (2,)], ring=counting)
    right = GMR.from_tuples(("A",), [(1,), (3,)], ring=counting)
    counting.counter.reset()
    _ = left + right
    assert counting.counter.additions >= 1
    counting.counter.reset()
    _ = left * right
    assert counting.counter.multiplications >= 1
    counting.counter.reset()
    _ = -left
    assert counting.counter.negations == 2


def test_counting_semiring_interoperates_with_plain_ring():
    counting = CountingSemiring()
    counted = GMR.from_tuples(("A",), [(1,)], ring=counting)
    plain = GMR.from_tuples(("A",), [(1,)])
    assert counted + plain == GMR.from_tuples(("A",), [(1,), (1,)])


def test_counting_semiring_without_inverse():
    from repro.algebra.semirings import NATURAL_SEMIRING

    counting = CountingSemiring(NATURAL_SEMIRING)
    assert not counting.is_ring
    with pytest.raises(TypeError):
        counting.neg(1)


def test_runtime_statistics_per_update_and_reset():
    statistics = RuntimeStatistics()
    assert statistics.per_update() == {}
    statistics.updates_processed = 4
    statistics.statements_executed = 8
    statistics.entries_updated = 12
    statistics.operations.additions = 20
    summary = statistics.per_update()
    assert summary["statements"] == 2.0
    assert summary["entries_updated"] == 3.0
    assert summary["arithmetic_ops"] == 5.0
    statistics.reset()
    assert statistics.updates_processed == 0


def test_constant_arithmetic_per_update_for_selfjoin_count():
    """The measured consequence of the NC⁰ claim: per-update ring operations do not
    grow with the database size for the recursive scheme."""
    query = parse("Sum(R(x) * R(y) * (x = y))")
    program = compile_query(query, UNARY_SCHEMA)

    def operations_for_update_at_size(size):
        counting = CountingSemiring()
        runtime = TriggerRuntime(program, ring=counting)
        for index in range(size):
            runtime.apply(insert("R", index % 17))
        counting.counter.reset()
        runtime.apply(insert("R", 3))
        return counting.counter.total

    small = operations_for_update_at_size(50)
    large = operations_for_update_at_size(800)
    assert small > 0
    assert large <= small * 2  # independent of the 16x database-size increase
