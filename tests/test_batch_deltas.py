"""Relation-valued batch deltas: batch triggers vs per-tuple reference semantics.

The compiler now emits, per ``(relation, sign)`` event, a *batch trigger*
whose parameter is a whole delta map ``∆R : key → multiplicity``
(`repro.core.delta.BatchUpdateEvent`).  These tests pin down:

* the delta rules for relation-valued updates (delta-map references, the
  product rule's second-order terms);
* the compiled IR (``BatchTrigger``/``BatchStatement`` incl. the
  key-projection analysis);
* batch-vs-sequential equivalence of ``apply_batch`` on all four backends,
  randomized, including a nested-aggregate query and a snapshot/restore
  round-trip mid-trace — with the PR-1 grouped replay path
  (``apply_batch_replay``) as the reference semantics;
* the ``Session.apply_batch`` cancellation of insert/delete pairs before any
  trigger runs.
"""

import random

import pytest

from repro.compiler.codegen import generate_python
from repro.compiler.compile import compile_query
from repro.compiler.runtime import TriggerRuntime
from repro.core.ast import MapRef, Neg
from repro.core.delta import BatchUpdateEvent, delta, delta_map_name, is_delta_map
from repro.core.parser import parse
from repro.gmr.database import Update, coalesce_updates, delete, insert
from repro.session import Session
from repro.workloads.streams import StreamGenerator

UNARY_SCHEMA = {"R": ("A",)}
GROUPED_SCHEMA = {"R": ("A", "B"), "S": ("C", "D")}

ALL_BACKENDS = ("generated", "interpreted", "classical", "naive")

#: Queries exercised by the batch-vs-sequential property test: a grouped
#: join, a self-join (second-order batch delta), and a nested aggregate
#: (recompute statements, executed once per batch group).
PROPERTY_QUERIES = {
    "join": ("AggSum([a], R(a, b) * S(b, d) * d)", GROUPED_SCHEMA),
    "selfjoin": ("Sum(R(x) * R(y) * (x = y))", UNARY_SCHEMA),
    "nested": ("AggSum([g], S(g, x) * x * (Sum(S(g, y) * y) > 3))", {"S": ("G", "B")}),
}


# ---------------------------------------------------------------------------
# The relation-valued delta operator
# ---------------------------------------------------------------------------


def test_batch_delta_of_matching_atom_is_a_delta_map_reference():
    event = BatchUpdateEvent(1, "R", 1)
    result = delta(parse("R(x)"), event)
    assert result == MapRef(delta_map_name("R"), ("x",))
    negated = delta(parse("R(x)"), BatchUpdateEvent(-1, "R", 1))
    assert negated == Neg(MapRef(delta_map_name("R"), ("x",)))
    assert is_delta_map(delta_map_name("R"))


def test_batch_delta_product_rule_keeps_second_order_term():
    """∆(R·R) must contain the ∆R·∆R interaction term — it is what makes one
    fold per batch equal to sequential per-tuple application."""
    event = BatchUpdateEvent(1, "R", 1)
    result = delta(parse("Sum(R(x) * R(y) * (x = y))"), event)
    text = str(result)
    assert text.count(delta_map_name("R")) >= 3  # two first-order + the ∆∆ term


def test_batch_delta_of_non_matching_relation_is_zero():
    from repro.core.ast import is_zero_literal

    assert is_zero_literal(delta(parse("S(x)"), BatchUpdateEvent(1, "R", 1)))


# ---------------------------------------------------------------------------
# Compiled IR
# ---------------------------------------------------------------------------


def test_compiled_program_has_one_batch_trigger_per_event():
    program = compile_query(parse("Sum(R(x) * R(y) * (x = y))"), UNARY_SCHEMA, name="q")
    assert set(program.batch_triggers) == set(program.triggers)
    trigger = program.batch_trigger_for("R", 1)
    assert trigger.delta_map == delta_map_name("R")
    assert trigger.statements  # q and the base component map
    assert "BATCH TRIGGERS:" in program.explain()


def test_key_projection_analysis_marks_base_copy_statements():
    """A statement whose rhs is exactly ``±∆R`` projected onto the target keys
    carries the projection — executors fold the pre-aggregated batch straight
    onto the map, one read-modify-write per distinct key."""
    program = compile_query(parse("Sum(R(x) * R(y) * (x = y))"), UNARY_SCHEMA, name="q")
    by_target = {
        (statement.target, trigger.sign): statement
        for trigger in program.batch_triggers.values()
        for statement in trigger.statements
    }
    [auxiliary] = [name for name in program.maps if name != "q"]
    assert by_target[(auxiliary, 1)].projection == (0,)
    assert by_target[(auxiliary, 1)].coefficient == 1
    assert by_target[(auxiliary, -1)].projection == (0,)
    assert by_target[(auxiliary, -1)].coefficient == -1
    # The result statement is second-order in ∆R: no pure projection.
    assert by_target[("q", 1)].projection is None


def test_delta_maps_are_never_slice_indexed():
    from repro.compiler.indexes import compute_index_specs

    program = compile_query(
        parse("AggSum([a], R(a, b) * S(b, d) * d)"), GROUPED_SCHEMA, name="q"
    )
    specs = compute_index_specs(program)
    assert not any(is_delta_map(name) for name in specs)


# ---------------------------------------------------------------------------
# Batch triggers vs the per-tuple reference semantics (runtime level)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("query_name", list(PROPERTY_QUERIES))
def test_runtime_batch_matches_replay_reference(query_name):
    """Interpreted backend: apply_batch (batch triggers) against
    apply_batch_replay (grouped per-tuple replay, the reference)."""
    text, schema = PROPERTY_QUERIES[query_name]
    program = compile_query(parse(text), schema, name="q")
    stream = StreamGenerator(schema, seed=11, default_domain_size=4).generate(260)
    reference = TriggerRuntime(program)
    batched = TriggerRuntime(program)
    for batch in stream.batches(21):
        reference.apply_batch_replay(batch)
        batched.apply_batch(batch)
    assert {name: dict(table) for name, table in reference.maps.items()} == {
        name: dict(table) for name, table in batched.maps.items()
    }


@pytest.mark.parametrize("query_name", list(PROPERTY_QUERIES))
def test_generated_batch_matches_replay_reference(query_name):
    text, schema = PROPERTY_QUERIES[query_name]
    program = compile_query(parse(text), schema, name="q")
    generated = generate_python(program)
    stream = StreamGenerator(schema, seed=17, default_domain_size=4).generate(260)
    reference = {name: {} for name in program.maps}
    batched = {name: {} for name in program.maps}
    changes_reference = {"q": {}}
    changes_batched = {"q": {}}
    for batch in stream.batches(19):
        generated.apply_batch_replay(reference, batch, changes=changes_reference)
        generated.apply_batch(batched, batch, changes=changes_batched)
    assert reference == batched
    # Change-data-capture accumulates identical per-key deltas on both paths.
    assert changes_reference == changes_batched


def test_batch_with_duplicate_tuples_matches_sequential():
    """Duplicates inside one batch exercise the multiplicity-weighted
    higher-order terms (m² for the self-join, not m)."""
    program = compile_query(parse("Sum(R(x) * R(y) * (x = y))"), UNARY_SCHEMA, name="q")
    batch = [insert("R", "c")] * 7 + [insert("R", "d")] * 3 + [delete("R", "c")] * 2
    sequential = TriggerRuntime(program)
    sequential.apply_all(batch)
    batched = TriggerRuntime(program)
    batched.apply_batch(batch)
    assert sequential.result() == batched.result() == 25 + 9


# ---------------------------------------------------------------------------
# Batch-vs-sequential on all four backends, with a mid-trace snapshot
# ---------------------------------------------------------------------------


def _random_trace(schemas, length, seed):
    merged = {}
    for schema in schemas:
        merged.update(schema)
    generator = StreamGenerator(merged, seed=seed, default_domain_size=4)
    stream = generator.generate(length)
    # Salt the trace with exact duplicates so within-batch multiplicities > 1
    # and insert/delete pairs occur.
    rng = random.Random(seed)
    updates = list(stream.updates)
    for _ in range(length // 5):
        victim = rng.choice(updates)
        updates.append(Update(rng.choice((1, -1)), victim.relation, victim.values))
    return updates


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_session_batch_vs_sequential_all_backends(seed):
    """The same random trace, applied tuple-at-a-time vs in batches, yields
    identical view results on every backend — including a nested-aggregate
    view — with a snapshot/restore round-trip in the middle of the batched
    trace."""
    schema = {"R": ("A", "B"), "S": ("C", "D")}
    views = {
        "join": "AggSum([a], R(a, b) * S(b, d) * d)",
        "nested": "AggSum([g], S(g, x) * x * (Sum(S(g, y) * y) > 3))",
    }

    def build():
        session = Session(schema)
        for view_name, text in views.items():
            for backend in ALL_BACKENDS:
                session.view(f"{view_name}_{backend}", text, backend=backend)
        return session

    trace = _random_trace([schema], 180, seed)
    sequential = build()
    for update in trace:
        sequential.apply(update)

    batched = build()
    half = len(trace) // 2
    first_part, second_part = trace[:half], trace[half:]
    for start in range(0, len(first_part), 30):
        batched.apply_batch(first_part[start : start + 30])
    # Snapshot mid-trace, revive, and continue batching on the restored session.
    batched = Session.restore(batched.snapshot())
    for start in range(0, len(second_part), 30):
        batched.apply_batch(second_part[start : start + 30])

    expected = sequential.results()
    observed = batched.results()
    for view_name in expected:
        assert observed[view_name] == expected[view_name], view_name
    # All backends agree with each other too.
    for view_name in views:
        reference = expected[f"{view_name}_generated"]
        for backend in ALL_BACKENDS[1:]:
            assert expected[f"{view_name}_{backend}"] == reference, (view_name, backend)


# ---------------------------------------------------------------------------
# Session.apply_batch cancels net-zero pairs before triggers run
# ---------------------------------------------------------------------------


def test_coalesce_updates_cancels_pairs_and_keeps_net_multiplicity():
    batch = [
        insert("R", 1),
        delete("R", 1),
        insert("R", 2),
        insert("R", 2),
        delete("R", 3),
    ]
    coalesced = coalesce_updates(batch)
    # Compact form: one update per surviving tuple, net multiplicity in count.
    assert coalesced == [Update(1, "R", (2,), count=2), delete("R", 3)]
    assert coalesce_updates([insert("R", 1), delete("R", 1)]) == []


def test_coalesce_updates_compacts_duplicates_without_object_churn():
    """10k inserts of one tuple must become a single count-carrying update."""
    batch = [insert("R", 7) for _ in range(10_000)]
    coalesced = coalesce_updates(batch)
    assert coalesced == [Update(1, "R", (7,), count=10_000)]
    # An already-compact batch is handed back as-is (no rebuild).
    distinct = [insert("R", 1), delete("R", 2)]
    assert coalesce_updates(distinct) is distinct
    # Count-carrying inputs net correctly against singles.
    assert coalesce_updates(
        [Update(1, "R", (5,), count=3), delete("R", 5), delete("R", 5)]
    ) == [Update(1, "R", (5,), count=1)]


def test_session_apply_batch_cancels_before_triggers_run():
    """A fully self-cancelling batch must execute zero trigger statements —
    net-zero work used to run in full (regression for the PR-1 batch path)."""
    session = Session(UNARY_SCHEMA)
    view = session.view("q", "Sum(R(x) * R(y) * (x = y))", backend="generated")
    session.apply_batch([insert("R", "c"), insert("R", "c")])
    baseline = session._groups["generated"].statistics.statements_executed
    session.apply_batch([insert("R", "d"), delete("R", "d"), insert("R", "e"), delete("R", "e")])
    assert session._groups["generated"].statistics.statements_executed == baseline
    assert view.result() == 4
    # The original updates still count toward the session-level log.
    assert session.updates_applied == 6


def test_session_apply_batch_cancellation_preserves_results_and_cdc():
    session = Session(UNARY_SCHEMA)
    view = session.view("q", "Sum(R(x))", backend="generated")
    payloads = []
    view.on_change(lambda changes: payloads.append(changes))
    session.apply_batch(
        [insert("R", "a"), insert("R", "b"), delete("R", "a"), insert("R", "b")]
    )
    assert view.result() == 2  # net: two b inserts
    assert payloads == [{(): 2}]


def test_coalesce_updates_never_emits_count_zero():
    """Regression (PR 7): random signed churn must never surface a compact
    update with ``count=0`` — net-zero keys are dropped, not emitted."""
    import random

    rng = random.Random(23)
    for _ in range(50):
        batch = [
            Update(rng.choice([1, -1]), "R", (rng.randrange(4),), count=rng.randrange(1, 4))
            for _ in range(rng.randrange(0, 30))
        ]
        coalesced = coalesce_updates(batch)
        assert all(update.count >= 1 for update in coalesced)
        net = {}
        for update in batch:
            key = update.values
            net[key] = net.get(key, 0) + update.sign * update.count
        expected = {key: count for key, count in net.items() if count != 0}
        observed = {u.values: u.sign * u.count for u in coalesced}
        assert observed == expected


def test_fully_cancelled_batch_touches_nothing_but_counters():
    """Regression (PR 7): an empty or fully-cancelled batch short-circuits
    ``Session.apply_batch`` — no history entry, no snapshot delta, no CDC —
    while the submitted-update counters still advance."""
    session = Session(UNARY_SCHEMA, track_history=True)
    view = session.view("q", "Sum(R(x))", backend="generated")
    payloads = []
    view.on_change(lambda changes: payloads.append(changes))
    session.apply_batch([insert("R", "a")])
    history_before = list(session._history)
    snapshot_before = session.snapshot()
    counted_before = session.updates_applied
    session.apply_batch([insert("R", "b"), delete("R", "b"), insert("R", "c"), delete("R", "c")])
    session.apply_batch([])
    assert list(session._history) == history_before
    # The snapshot is unchanged except for the submitted-update counter,
    # which deliberately keeps counting cancelled churn.
    snapshot_after = session.snapshot()
    assert snapshot_after.pop("updates_applied") == snapshot_before.pop("updates_applied") + 4
    assert snapshot_after == snapshot_before
    assert payloads == [{(): 1}]  # only the first (real) batch notified
    assert session.updates_applied == counted_before + 4
    assert view.result() == 1


def test_reserved_delta_prefix_is_rejected_as_a_program_name():
    from repro.core.errors import CompilationError

    with pytest.raises(CompilationError):
        compile_query(parse("Sum(R(x))"), UNARY_SCHEMA, name="__delta__R")
