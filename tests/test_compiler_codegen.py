"""Tests for the generated straight-line Python triggers (the NC⁰C analogue)."""

import pytest

from repro.compiler.codegen import generate_python
from repro.compiler.compile import compile_query
from repro.compiler.runtime import TriggerRuntime
from repro.core.ast import Rel
from repro.core.errors import CompilationError
from repro.core.parser import parse
from repro.workloads.queries import CANONICAL_QUERIES
from repro.workloads.schemas import UNARY_SCHEMA
from repro.workloads.streams import StreamGenerator


def fresh_maps(program):
    return {name: {} for name in program.maps}


def test_generated_module_shape():
    program = compile_query(parse("Sum(R(x) * R(y) * (x = y))"), UNARY_SCHEMA, name="q")
    generated = generate_python(program)
    assert "def on_insert_R(maps, values, _IDX=None, _CH=None):" in generated.source
    assert "def on_delete_R(maps, values, _IDX=None, _CH=None):" in generated.source
    assert "def apply_update(maps, relation, sign, values, _IDX=None, _CH=None):" in generated.source
    assert "def apply_batch(maps, updates, _IDX=None, _CH=None):" in generated.source
    assert "def apply_batch_replay(maps, updates, _IDX=None, _CH=None):" in generated.source
    assert "def replay_on_insert_R(maps, values_list, _IDX=None, _CH=None):" in generated.source
    assert "def batch_on_insert_R(maps, _delta, _IDX=None, _CH=None):" in generated.source
    assert set(generated.trigger_function_names()) == {"on_insert_R", "on_delete_R"}
    # The generated code never mentions joins, relations or the evaluator.
    assert "evaluate" not in generated.source
    assert "Rel(" not in generated.source
    # The default integer ring compiles to native arithmetic, not ring calls.
    assert "_RING" not in generated.source


def test_generated_code_reproduces_example_1_2():
    program = compile_query(parse("Sum(R(x) * R(y) * (x = y))"), UNARY_SCHEMA, name="q")
    generated = generate_python(program)
    maps = fresh_maps(program)
    expected = [1, 4, 5, 10, 9, 16, 9]
    sequence = [("c", 1), ("c", 1), ("d", 1), ("c", 1), ("d", -1), ("c", 1), ("c", -1)]
    observed = []
    for value, sign in sequence:
        generated.apply(maps, "R", sign, (value,))
        observed.append(maps["q"].get((), 0))
    assert observed == expected


@pytest.mark.parametrize(
    "query", [q for q in CANONICAL_QUERIES], ids=[q.name for q in CANONICAL_QUERIES]
)
def test_generated_and_interpreted_triggers_agree(query):
    program = compile_query(query.expr, query.schema, name="q")
    generated = generate_python(program)
    interpreter = TriggerRuntime(program)
    maps = fresh_maps(program)
    stream = StreamGenerator(query.schema, seed=13, default_domain_size=6).generate(120)
    for update in stream:
        interpreter.apply(update)
        generated.apply(maps, update.relation, update.sign, update.values)
    for name in program.maps:
        assert maps[name] == interpreter.maps[name], name


def test_generated_code_handles_deferred_inequalities():
    schema = {"R": ("A", "B"), "S": ("C", "D")}
    query = parse("Sum(R(a, b) * S(c, d) * (b = c) * (a < d) * d)")
    program = compile_query(query, schema, name="q")
    generated = generate_python(program)
    interpreter = TriggerRuntime(program)
    maps = fresh_maps(program)
    stream = StreamGenerator(schema, seed=5, default_domain_size=5).generate(100)
    for update in stream:
        interpreter.apply(update)
        generated.apply(maps, update.relation, update.sign, update.values)
    assert maps["q"] == interpreter.maps["q"]


def test_generated_source_is_idempotent_per_program():
    program = compile_query(parse("Sum(R(x) * x)"), UNARY_SCHEMA)
    assert generate_python(program).source == generate_python(program).source


def test_codegen_rejects_base_relations_in_statements():
    from repro.compiler.triggers import Statement, Trigger, TriggerProgram
    from repro.compiler.maps import MapDefinition

    bogus = TriggerProgram(
        result_map="q",
        maps={"q": MapDefinition("q", (), parse("R(x)"))},
        triggers={
            ("R", 1): Trigger(
                relation="R",
                sign=1,
                argument_names=("__d_R_0",),
                statements=(Statement("q", (), Rel("R", ("x",))),),
            )
        },
        schema={"R": ("A",)},
    )
    with pytest.raises(CompilationError):
        generate_python(bogus)


def test_unknown_event_is_a_no_op():
    program = compile_query(parse("Sum(R(x))"), {"R": ("A",), "S": ("B",)}, name="q")
    generated = generate_python(program)
    maps = fresh_maps(program)
    generated.apply(maps, "S", 1, (1,))
    assert maps["q"] == {}


# ---------------------------------------------------------------------------
# Ring-generic code generation (regression: `ring` used to be silently ignored)
# ---------------------------------------------------------------------------


RING_TEST_QUERIES = [
    ("Sum(R(x) * R(y) * (x = y))", UNARY_SCHEMA),
    ("Sum(R(x) * x)", UNARY_SCHEMA),
    ("AggSum([a], R(a, b) * S(b, c) * c)", {"R": ("A", "B"), "S": ("C", "D")}),
]


@pytest.mark.parametrize("text,schema", RING_TEST_QUERIES, ids=[t for t, _ in RING_TEST_QUERIES])
def test_generated_backend_respects_fraction_ring(text, schema):
    from repro.algebra.semirings import RATIONAL_FIELD

    program = compile_query(parse(text), schema, name="q")
    generated = generate_python(program, ring=RATIONAL_FIELD)
    interpreter = TriggerRuntime(program, ring=RATIONAL_FIELD)
    maps = fresh_maps(program)
    stream = StreamGenerator(schema, seed=7, default_domain_size=5).generate(150)
    for update in stream:
        interpreter.apply(update)
        generated.apply(maps, update.relation, update.sign, update.values)
    for name in program.maps:
        assert maps[name] == dict(interpreter.maps[name]), name
    # The generic module routes arithmetic through the ring object.
    assert "_RING" in generated.source


def test_generated_backend_counts_ring_operations():
    """A CountingSemiring must not be short-circuited to native arithmetic."""
    from repro.compiler.cost import CountingSemiring

    counting = CountingSemiring()
    program = compile_query(parse("Sum(R(x) * R(y) * (x = y))"), UNARY_SCHEMA, name="q")
    generated = generate_python(program, ring=counting)
    maps = fresh_maps(program)
    generated.apply(maps, "R", 1, (3,))
    generated.apply(maps, "R", 1, (3,))
    assert counting.counter.total > 0


def test_generated_backend_rejects_proper_semirings():
    from repro.algebra.semirings import BOOLEAN_SEMIRING, MIN_PLUS, NATURAL_SEMIRING

    program = compile_query(parse("Sum(R(x))"), UNARY_SCHEMA, name="q")
    for semiring in (BOOLEAN_SEMIRING, NATURAL_SEMIRING, MIN_PLUS):
        with pytest.raises(CompilationError):
            generate_python(program, ring=semiring)


def test_recursive_engine_generated_backend_uses_ring():
    """End-to-end: RecursiveIVM(ring=Q, backend=generated) matches interpreted."""
    from fractions import Fraction

    from repro.algebra.semirings import RATIONAL_FIELD
    from repro.ivm.recursive import RecursiveIVM

    schema = {"R": ("A",)}
    query = parse("Sum(R(x) * x)")
    interpreted = RecursiveIVM(query, schema, ring=RATIONAL_FIELD, backend="interpreted")
    generated = RecursiveIVM(query, schema, ring=RATIONAL_FIELD, backend="generated")
    domain = [Fraction(1, 3), Fraction(2, 7), Fraction(5, 2)]
    generator = StreamGenerator(schema, domains={"A": domain}, seed=11)
    for update in generator.generate(120):
        interpreted.apply(update)
        generated.apply(update)
    expected = sum((value for (value,) in generator.live_tuples("R")), Fraction(0))
    assert interpreted.result() == expected
    assert generated.result() == expected


def test_recursive_engine_generated_backend_maintains_semirings():
    """Semirings flow through the generated backend: ring-compiling attaches
    the maintenance plan, which lowers deletions to integer counter updates
    plus tracked recomputes instead of (nonexistent) negated folds."""
    from repro.algebra.semirings import BOOLEAN_SEMIRING, MIN_PLUS
    from repro.ivm.recursive import RecursiveIVM

    schema = {"R": ("A",)}
    query = parse("Sum(R(x) * x)")
    interpreted = RecursiveIVM(query, schema, ring=MIN_PLUS, backend="interpreted")
    generated = RecursiveIVM(query, schema, ring=MIN_PLUS, backend="generated")
    generator = StreamGenerator(schema, seed=7)
    for update in generator.generate(150):
        interpreted.apply(update)
        generated.apply(update)
    live = [value for (value,) in generator.live_tuples("R")]
    expected = min(live) if live else MIN_PLUS.zero
    assert interpreted.result() == expected
    assert generated.result() == expected
    # A bare relation count is still rejected: there is no ring-valued fold
    # to maintain (the base-copy registry would alias the result map itself).
    with pytest.raises(CompilationError):
        RecursiveIVM(parse("Sum(R(x))"), UNARY_SCHEMA, ring=BOOLEAN_SEMIRING, backend="generated")


def test_generated_backend_reports_work_counters():
    """Regression: generated triggers used to leave statements/entries at 0."""
    from repro.ivm.recursive import RecursiveIVM

    query = parse("Sum(R(x) * R(y) * (x = y))")
    interpreted = RecursiveIVM(query, UNARY_SCHEMA, backend="interpreted")
    generated = RecursiveIVM(query, UNARY_SCHEMA, backend="generated")
    stream = StreamGenerator(UNARY_SCHEMA, seed=23, default_domain_size=5).generate(80)
    for update in stream:
        interpreted.apply(update)
        generated.apply(update)
    lhs = interpreted.runtime.statistics
    rhs = generated.runtime.statistics
    assert rhs.statements_executed > 0
    assert rhs.entries_updated > 0
    assert rhs.updates_processed == lhs.updates_processed
    assert rhs.statements_executed == lhs.statements_executed
    assert rhs.entries_updated == lhs.entries_updated


def test_reserved_runtime_identifiers_survive_as_query_variables():
    """AGCA variables named like generated-code internals (_CH, _IDX, maps, ...)
    must be renamed by the allocator, not shadow the runtime parameters."""
    from repro.gmr.database import insert

    schema = {"R": ("A", "B"), "S": ("C", "D")}
    for variable in ("_CH", "_IDX", "maps", "values"):
        query = parse(f"AggSum([{variable}], R({variable}, y) * S({variable}, z) * y * z)")
        program = compile_query(query, schema, name="q")
        generated = generate_python(program)
        maps = fresh_maps(program)
        generated.apply(maps, "S", 1, (1, 3))
        generated.apply(maps, "R", 1, (1, 2))
        assert maps["q"] == {(1,): 6}, variable
