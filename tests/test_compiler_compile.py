"""Tests for the recursive trigger compiler (structure of the produced programs)."""

import pytest

from repro.compiler.compile import Compiler, compile_query
from repro.core.ast import Rel, walk
from repro.core.errors import CompilationError, SchemaError, UnsafeQueryError
from repro.core.parser import parse
from repro.workloads.schemas import CUSTOMER_SCHEMA, RST_SCHEMA, UNARY_SCHEMA


def test_result_map_and_group_vars():
    program = compile_query(parse("AggSum([c], C(c, n) * C(c2, n2) * (n = n2))"), CUSTOMER_SCHEMA, name="same")
    assert program.result_map == "same"
    assert program.group_vars == ("c",)
    assert program.result_definition.level == 0
    assert program.maps["same"].relations == frozenset({"C"})


def test_group_vars_can_be_passed_separately():
    body = parse("C(c, n) * C(c2, n2) * (n = n2)")
    program = compile_query(body, CUSTOMER_SCHEMA, group_vars=("c",))
    assert program.group_vars == ("c",)
    with pytest.raises(CompilationError):
        compile_query(parse("AggSum([c], C(c, n))"), CUSTOMER_SCHEMA, group_vars=("n",))


def test_one_trigger_per_relation_and_sign():
    program = compile_query(
        parse("Sum(R(a, b) * S(c, d) * T(e, f) * (b = c) * (d = e) * a * f)"), RST_SCHEMA
    )
    assert set(program.triggers) == {
        ("R", 1), ("R", -1), ("S", 1), ("S", -1), ("T", 1), ("T", -1),
    }
    for (relation, _sign), trigger in program.triggers.items():
        assert trigger.relation == relation
        assert len(trigger.argument_names) == len(RST_SCHEMA[relation])


def test_example_1_3_produces_factorized_maps():
    """On ±S the result is maintained from two unary maps (the paper's (∆Q)1, (∆Q)2)."""
    program = compile_query(
        parse("Sum(R(a, b) * S(c, d) * T(e, f) * (b = c) * (d = e) * a * f)"), RST_SCHEMA, name="q"
    )
    trigger = program.trigger_for("S", 1)
    [statement_for_q] = [s for s in trigger.statements if s.target == "q"]
    referenced = statement_for_q.maps_read()
    assert len(referenced) == 2
    for name in referenced:
        assert program.maps[name].arity == 1
        assert program.maps[name].level == 1


def test_delta_hierarchy_levels_are_bounded_by_degree():
    program = compile_query(
        parse("Sum(R(a, b) * S(c, d) * T(e, f) * (b = c) * (d = e) * a * f)"), RST_SCHEMA
    )
    max_level = max(definition.level for definition in program.maps.values())
    assert max_level <= 2  # degree 3 query: levels 0, 1, 2
    for definition in program.maps.values():
        assert definition.degree <= 3 - definition.level


def test_degree_one_query_needs_no_auxiliary_maps():
    program = compile_query(parse("Sum(R(x) * x)"), UNARY_SCHEMA)
    assert len(program.maps) == 1
    assert program.auxiliary_maps() == ()
    # Its triggers are pure functions of the update values.
    for trigger in program.triggers.values():
        for statement in trigger.statements:
            assert statement.maps_read() == ()


def test_structurally_equal_components_are_deduplicated():
    """The self-join delta has two symmetric components that share one map."""
    program = compile_query(parse("Sum(R(x) * R(y) * (x = y))"), UNARY_SCHEMA)
    assert len(program.maps) == 2  # the result plus a single count-by-value map
    trigger = program.trigger_for("R", 1)
    [result_statement] = [s for s in trigger.statements if s.target == program.result_map]
    # The combined statement reads the shared map once, scaled by 2.
    assert len(result_statement.maps_read()) == 1
    assert "2" in str(result_statement.rhs)


def test_compiled_rhs_contains_no_base_relations():
    for text, schema in [
        ("Sum(R(x) * R(y) * (x = y))", UNARY_SCHEMA),
        ("AggSum([c], C(c, n) * C(c2, n2) * (n = n2))", CUSTOMER_SCHEMA),
        ("Sum(R(a, b) * S(c, d) * T(e, f) * (b = c) * (d = e) * a * f)", RST_SCHEMA),
    ]:
        program = compile_query(parse(text), schema)
        for trigger in program.triggers.values():
            for statement in trigger.statements:
                assert not any(isinstance(node, Rel) for node in walk(statement.rhs)), statement


def test_map_definitions_use_canonical_key_names():
    program = compile_query(parse("Sum(R(x) * R(y) * (x = y))"), UNARY_SCHEMA)
    for definition in program.auxiliary_maps():
        assert all(key.startswith("k") for key in definition.key_vars)


def test_inequality_join_defers_boundary_condition():
    schema = {"R": ("A", "B"), "S": ("C", "D")}
    program = compile_query(parse("Sum(R(a, b) * S(c, d) * (b = c) * (a < d) * d)"), schema)
    trigger = program.trigger_for("S", 1)
    [statement] = [s for s in trigger.statements if s.target == program.result_map]
    # The inequality stays in the statement; the referenced map is keyed by
    # the equality key plus the inequality's component variable.
    assert "<" in str(statement.rhs)
    [map_name] = statement.maps_read()
    assert program.maps[map_name].arity == 2


def test_nested_aggregates_compile_into_a_hierarchy():
    """The closure theorem in action: the inner aggregate becomes an auxiliary
    map and the outer map is maintained by a recompute statement."""
    program = compile_query(parse("Sum(R(x) * (Sum(R(y)) > 2))"), UNARY_SCHEMA)
    auxiliary = program.auxiliary_maps()
    assert len(auxiliary) >= 1
    assert all(definition.level >= 1 for definition in auxiliary)
    trigger = program.trigger_for("R", 1)
    assert trigger.recomputes, "nested readers must be maintained by recompute"
    [recompute] = trigger.recomputes
    assert recompute.target == program.result_map
    # The re-evaluation body reads materialized maps only, never base relations.
    from repro.core.ast import relation_atoms

    assert not relation_atoms(recompute.body)


def test_bare_relations_in_condition_operands_are_rejected():
    with pytest.raises(CompilationError):
        compile_query(parse("Sum(R(x) * (R(y) > 2))"), UNARY_SCHEMA)


def test_map_references_in_user_queries_are_rejected():
    with pytest.raises(CompilationError):
        compile_query(parse("Sum(m[x] * R(x))"), UNARY_SCHEMA)


def test_unknown_relation_and_arity_mismatch():
    with pytest.raises(SchemaError):
        compile_query(parse("Sum(Q(x))"), UNARY_SCHEMA)
    with pytest.raises(SchemaError):
        compile_query(parse("Sum(R(x, y))"), UNARY_SCHEMA)


def test_unsafe_queries_are_rejected():
    with pytest.raises(UnsafeQueryError):
        compile_query(parse("Sum(R(x) * y)"), UNARY_SCHEMA)


def test_explain_lists_maps_and_triggers():
    program = compile_query(parse("Sum(R(x) * R(y) * (x = y))"), UNARY_SCHEMA, name="q")
    text = program.explain()
    assert "MAPS:" in text and "TRIGGERS:" in text
    assert "ON +R(" in text and "ON -R(" in text
    assert "q[]" in text
    assert repr(program).startswith("TriggerProgram(")


def test_compiler_instance_is_reusable():
    compiler = Compiler(UNARY_SCHEMA)
    first = compiler.compile(parse("Sum(R(x))"), name="a")
    second = compiler.compile(parse("Sum(R(x) * x)"), name="b")
    assert first.result_map == "a" and second.result_map == "b"
    assert set(first.maps) == {"a"} and set(second.maps) == {"b"}
