"""Tests for the secondary slice indexes behind partially-bound map references."""

import pytest

from repro.compiler.codegen import generate_python
from repro.compiler.compile import compile_query
from repro.compiler.indexes import IndexedMaps, SliceIndexes, compute_index_specs
from repro.compiler.runtime import TriggerRuntime
from repro.core.parser import parse
from repro.gmr.database import Database, insert
from repro.workloads.streams import StreamGenerator

RST_SCHEMA = {"R": ("A", "B"), "S": ("C", "D"), "T": ("E", "F")}
CHAIN_QUERY = parse("Sum(R(a, b) * S(c, d) * T(e, f) * (b = c) * (d = e) * a * f)")


# ---------------------------------------------------------------------------
# SliceIndexes mechanics
# ---------------------------------------------------------------------------


def test_slice_indexes_add_discard_lookup():
    indexes = SliceIndexes({"m": [(0,), (1,)]})
    indexes.add("m", (1, "x"))
    indexes.add("m", (1, "y"))
    indexes.add("m", (2, "x"))
    assert set(indexes.lookup("m", (0,), (1,))) == {(1, "x"), (1, "y")}
    assert set(indexes.lookup("m", (1,), ("x",))) == {(1, "x"), (2, "x")}
    indexes.discard("m", (1, "x"))
    assert set(indexes.lookup("m", (0,), (1,))) == {(1, "y")}
    # Removing the last key of a prefix drops the bucket entirely.
    indexes.discard("m", (1, "y"))
    assert indexes.lookup("m", (0,), (1,)) == ()
    assert (1,) not in indexes.bucket("m", (0,))


def test_slice_indexes_ignores_unspecified_maps_and_signatures():
    indexes = SliceIndexes({"m": [(0,)]})
    indexes.add("other", (1, 2))  # no spec: silently ignored
    assert indexes.lookup("other", (0,), (1,)) == ()
    assert indexes.bucket("m", (1,)) is None


def test_slice_indexes_rebuild():
    indexes = SliceIndexes({"m": [(0,)]})
    maps = {"m": {(1, "x"): 5, (2, "y"): 7}, "unindexed": {(9,): 1}}
    indexes.rebuild(maps)
    assert set(indexes.lookup("m", (0,), (1,))) == {(1, "x")}
    assert indexes.total_indexed_keys() == 2
    # Rebuilding from fresh contents discards stale registrations.
    indexes.rebuild({"m": {(3, "z"): 1}})
    assert indexes.lookup("m", (0,), (1,)) == ()
    assert set(indexes.lookup("m", (0,), (3,))) == {(3, "z")}


def test_indexed_maps_is_a_dict_with_indexes():
    indexes = SliceIndexes({"m": [(0,)]})
    maps = IndexedMaps({"m": {}}, indexes=indexes)
    assert isinstance(maps, dict)
    assert maps.indexes is indexes
    maps["m"][(1, 2)] = 3
    assert maps["m"] == {(1, 2): 3}


# ---------------------------------------------------------------------------
# Static analysis of trigger programs
# ---------------------------------------------------------------------------


def test_compute_index_specs_flags_partially_bound_references():
    program = compile_query(CHAIN_QUERY, RST_SCHEMA, name="q")
    specs = compute_index_specs(program)
    # The chain join slices some auxiliary map by a bound prefix on updates to
    # the end relations; the exact names depend on materialization order, but
    # there must be at least one partially-bound signature and every
    # signature must be a proper, non-empty subset of the map's key positions.
    assert specs, "expected partially-bound map references in the chain join"
    for name, all_positions in specs.items():
        arity = len(program.maps[name].key_vars)
        for positions in all_positions:
            assert 0 < len(positions) < arity
            assert all(0 <= position < arity for position in positions)


def test_compute_index_specs_empty_for_fully_bound_programs():
    program = compile_query(parse("Sum(R(x) * R(y) * (x = y))"), {"R": ("A",)}, name="q")
    assert compute_index_specs(program) == {}


def test_generated_code_uses_index_lookups_for_partial_references():
    program = compile_query(CHAIN_QUERY, RST_SCHEMA, name="q")
    generated = generate_python(program)
    assert generated.index_specs == compute_index_specs(program)
    assert "_IDX[(" in generated.source, "partially-bound references should use the index"


# ---------------------------------------------------------------------------
# Runtime integration: indexes stay in sync in both backends
# ---------------------------------------------------------------------------


def _assert_indexes_consistent(maps, indexes):
    for (name, positions), bucket in indexes.data.items():
        expected = {}
        for key in maps[name]:
            prefix = tuple(key[index] for index in positions)
            expected.setdefault(prefix, set()).add(key)
        assert bucket == expected, (name, positions)


def test_interpreted_runtime_maintains_indexes():
    program = compile_query(CHAIN_QUERY, RST_SCHEMA, name="q")
    runtime = TriggerRuntime(program)
    stream = StreamGenerator(RST_SCHEMA, seed=3, default_domain_size=4).generate(250)
    for update in stream:
        runtime.apply(update)
    assert runtime.indexes.data, "program has partial references, indexes expected"
    _assert_indexes_consistent(runtime.maps, runtime.indexes)


def test_generated_runtime_maintains_indexes_and_matches_interpreter():
    program = compile_query(CHAIN_QUERY, RST_SCHEMA, name="q")
    generated = generate_python(program)
    interpreter = TriggerRuntime(program)
    maps = {name: {} for name in program.maps}
    stream = StreamGenerator(RST_SCHEMA, seed=5, default_domain_size=4).generate(250)
    for update in stream:
        interpreter.apply(update)
        generated.apply(maps, update.relation, update.sign, update.values)
    for name in program.maps:
        assert maps[name] == dict(interpreter.maps[name]), name
    # The generated backend maintained its private indexes correctly too.
    _assert_indexes_consistent(maps, generated._own_indexes)


def test_mixed_backends_share_one_runtime():
    """Interpreted and generated applications interleave over the same maps."""
    program = compile_query(CHAIN_QUERY, RST_SCHEMA, name="q")
    runtime = TriggerRuntime(program)
    generated = generate_python(program)
    reference = TriggerRuntime(program)
    stream = StreamGenerator(RST_SCHEMA, seed=8, default_domain_size=4).generate(200)
    for position, update in enumerate(stream):
        reference.apply(update)
        if position % 2:
            runtime.apply(update)
        else:
            generated.apply(
                runtime.maps, update.relation, update.sign, update.values,
                indexes=runtime.indexes,
            )
    for name in program.maps:
        assert dict(runtime.maps[name]) == dict(reference.maps[name]), name
    _assert_indexes_consistent(runtime.maps, runtime.indexes)


def test_bootstrap_rebuilds_indexes():
    program = compile_query(CHAIN_QUERY, RST_SCHEMA, name="q")
    db = Database(schema=RST_SCHEMA)
    generator = StreamGenerator(RST_SCHEMA, seed=17, default_domain_size=4)
    for update in generator.generate_inserts(120):
        db.apply(update)
    runtime = TriggerRuntime(program)
    runtime.bootstrap(db)
    _assert_indexes_consistent(runtime.maps, runtime.indexes)
    # Updates after bootstrap keep using (and maintaining) the rebuilt indexes.
    reference = TriggerRuntime(program)
    reference.bootstrap(db)
    for update in generator.generate(120):
        runtime.apply(update)
        reference.apply(update)
    for name in program.maps:
        assert dict(runtime.maps[name]) == dict(reference.maps[name])
    _assert_indexes_consistent(runtime.maps, runtime.indexes)


def test_generated_private_index_survives_external_map_reset():
    """Clearing or repopulating the maps outside apply() must not leave the
    private slice index stale (regression: stale keys raised KeyError)."""
    program = compile_query(CHAIN_QUERY, RST_SCHEMA, name="q")
    generated = generate_python(program)
    maps = {name: {} for name in program.maps}
    stream = StreamGenerator(RST_SCHEMA, seed=2, default_domain_size=4).generate(80)
    for update in stream:
        generated.apply(maps, update.relation, update.sign, update.values)
    # External reset: same maps object, fresh tables.
    for table in maps.values():
        table.clear()
    reference = TriggerRuntime(program)
    for update in stream:
        generated.apply(maps, update.relation, update.sign, update.values)
        reference.apply(update)
    for name in program.maps:
        assert maps[name] == dict(reference.maps[name]), name


def test_runtime_apply_batch_validates_whole_batch_upfront():
    """A malformed update anywhere in the batch fails before any map changes."""
    program = compile_query(parse("Sum(R(x))"), {"R": ("A",)}, name="q")
    runtime = TriggerRuntime(program)
    bad_batch = [insert("R", 1), insert("R", 2, 3), insert("R", 4)]
    with pytest.raises(ValueError, match="arity"):
        runtime.apply_batch(bad_batch)
    assert runtime.maps["q"] == {}, "no update of the invalid batch may be applied"
    assert runtime.statistics.updates_processed == 0


def test_indexed_slices_avoid_full_scans_in_evaluator():
    """The interpreted evaluator consults the indexes: behaviour stays identical
    but partially-bound lookups touch only matching entries.  We verify
    observable equivalence against a runtime whose indexes are disabled."""
    program = compile_query(CHAIN_QUERY, RST_SCHEMA, name="q")
    indexed = TriggerRuntime(program)
    plain = TriggerRuntime(program)
    plain.indexes = SliceIndexes()  # disable: evaluator falls back to scans
    plain.maps.indexes = plain.indexes
    stream = StreamGenerator(RST_SCHEMA, seed=21, default_domain_size=4).generate(200)
    for update in stream:
        indexed.apply(update)
        plain.apply(update)
    for name in program.maps:
        assert dict(indexed.maps[name]) == dict(plain.maps[name]), name
