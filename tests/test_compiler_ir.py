"""Tests for the compiler IR objects (map definitions, statements, triggers, programs)."""

from repro.compiler.compile import compile_query
from repro.compiler.maps import MapDefinition
from repro.compiler.triggers import Statement, Trigger
from repro.core.ast import MapRef, Mul, Var
from repro.core.parser import parse
from repro.workloads.schemas import CUSTOMER_SCHEMA, UNARY_SCHEMA


def test_map_definition_properties():
    definition = MapDefinition(
        name="m", key_vars=("k0",), definition=parse("R(v0) * (k0 := v0)"), level=1
    )
    assert definition.arity == 1
    assert definition.relations == frozenset({"R"})
    assert definition.degree == 1
    aggregate = definition.as_aggregate()
    assert aggregate.group_vars == ("k0",)
    assert "m[k0]" in definition.describe()
    assert "MapDefinition" in repr(definition)


def test_statement_maps_read_and_describe():
    statement = Statement(
        target="q",
        target_keys=("c",),
        rhs=Mul((MapRef("m1", ("c",)), MapRef("m2", ("c",)), MapRef("m1", ("c",)), Var("x"))),
    )
    assert statement.maps_read() == ("m1", "m2")
    assert statement.as_aggregate().group_vars == ("c",)
    assert statement.describe().startswith("q[c] += ")
    assert "Statement" in repr(statement)


def test_trigger_event_name_and_describe():
    statement = Statement("q", (), parse("1"))
    up = Trigger(relation="R", sign=1, argument_names=("__d_R_0",), statements=(statement,))
    down = Trigger(relation="R", sign=-1, argument_names=("__d_R_0",), statements=())
    assert up.event_name == "on_insert_R"
    assert down.event_name == "on_delete_R"
    assert "ON +R(__d_R_0):" in up.describe()
    assert "(no-op)" in down.describe()
    assert "on_insert_R" in repr(up)


def test_program_accessors():
    program = compile_query(
        parse("AggSum([c], C(c, n) * C(c2, n2) * (n = n2))"), CUSTOMER_SCHEMA, name="same"
    )
    assert program.trigger_for("C", 1) is not None
    assert program.trigger_for("Missing", 1) is None
    auxiliaries = program.auxiliary_maps()
    assert all(definition.name != "same" for definition in auxiliaries)
    assert [d.level for d in auxiliaries] == sorted(d.level for d in auxiliaries)
    assert program.statement_count() >= len(program.triggers)
    assert program.group_vars == ("c",)


def test_statements_within_a_trigger_are_ordered_parents_first():
    program = compile_query(parse("Sum(R(x) * R(y) * (x = y))"), UNARY_SCHEMA, name="q")
    for trigger in program.triggers.values():
        levels = [program.maps[statement.target].level for statement in trigger.statements]
        assert levels == sorted(levels)
