"""Unit tests for the nested-aggregate materialization hierarchy.

The trigger compiler extracts inner aggregates into auxiliary maps, replaces
base relations in re-evaluation bodies with materialized base copies, and
maintains nested readers with recompute statements — tracked (per affected
group) when every source map is keyed by the target's group variables, full
otherwise.
"""

import random

import pytest

from repro.compiler.compile import compile_query
from repro.compiler.runtime import TriggerRuntime
from repro.core.ast import MapRef, relation_atoms, walk
from repro.core.errors import CompilationError
from repro.core.parser import parse
from repro.gmr.database import Database, delete, insert
from repro.ivm.naive import NaiveReevaluation
from repro.ivm.recursive import RecursiveIVM

GROUPED_SCHEMA = {"R": ("G", "X")}
TWO_RELATIONS = {"R": ("G", "X"), "S": ("G", "Y")}

#: Per-group sales strictly below the global total (the paper-style query).
GLOBAL_TOTAL = "AggSum([g], R(g, x) * (x < Sum(R(g2, x2) * x2)) * x)"
#: HAVING-style: per-group total where the group has more than two rows.
HAVING_STYLE = "AggSum([g], AggSum([g], R(g, x) * x) * (Sum(R(g, y)) > 2))"
#: Correlated subquery against a second relation.
CORRELATED = "AggSum([g], R(g, x) * (x < Sum(S(g, y) * y)) * x)"


def mixed_stream(schema, count, seed, groups=4, domain=7):
    rng = random.Random(seed)
    relations = sorted(schema)
    live, updates = [], []
    for _ in range(count):
        if live and rng.random() < 0.35:
            updates.append(delete(*live.pop(rng.randrange(len(live)))))
        else:
            relation = rng.choice(relations)
            row = (relation, rng.randrange(groups)) + tuple(
                rng.randrange(domain) for _ in range(len(schema[relation]) - 1)
            )
            live.append(row)
            updates.append(insert(*row))
    return updates


# ---------------------------------------------------------------------------
# Hierarchy structure
# ---------------------------------------------------------------------------


def test_inner_aggregate_becomes_auxiliary_map():
    program = compile_query(parse(GLOBAL_TOTAL), GROUPED_SCHEMA, name="q")
    levels = {definition.level for definition in program.maps.values()}
    assert levels == {0, 1}
    # The inner Sum and the base copy of R are both materialized.
    assert len(program.maps) == 3
    result = program.result_definition
    assert any(isinstance(node, MapRef) for node in walk(result.definition))


def test_recompute_body_reads_maps_only():
    program = compile_query(parse(GLOBAL_TOTAL), GROUPED_SCHEMA, name="q")
    for trigger in program.triggers.values():
        for recompute in trigger.recomputes:
            assert not relation_atoms(recompute.body)
            assert recompute.maps_read()


def test_scalar_inner_aggregate_forces_full_recompute():
    program = compile_query(parse(GLOBAL_TOTAL), GROUPED_SCHEMA, name="q")
    [recompute] = program.trigger_for("R", 1).recomputes
    assert not recompute.tracked  # the global total can affect every group


def test_group_keyed_sources_enable_tracked_recompute():
    program = compile_query(parse(HAVING_STYLE), GROUPED_SCHEMA, name="q")
    [recompute] = program.trigger_for("R", 1).recomputes
    assert recompute.tracked
    assert {source for source, _ in recompute.source_projections} == set(
        definition.name for definition in program.auxiliary_maps()
    )


def test_correlated_subquery_keeps_closed_form_for_outer_relation():
    """Updates to R (which never changes the inner map over S) stay closed-form;
    updates to S trigger the recompute."""
    program = compile_query(parse(CORRELATED), TWO_RELATIONS, name="q")
    r_trigger = program.trigger_for("R", 1)
    assert not r_trigger.recomputes
    assert any(statement.target == "q" for statement in r_trigger.statements)
    s_trigger = program.trigger_for("S", 1)
    assert any(recompute.target == "q" for recompute in s_trigger.recomputes)
    [recompute] = s_trigger.recomputes
    assert recompute.tracked


def test_identical_inner_aggregates_are_deduplicated():
    text = "AggSum([g], R(g, x) * (x < Sum(R(a, b) * b)) * (0 - x < Sum(R(c, d) * d)))"
    program = compile_query(parse(text), GROUPED_SCHEMA, name="q")
    inner = [
        definition
        for definition in program.auxiliary_maps()
        if relation_atoms(definition.definition) and definition.arity == 0
    ]
    assert len(inner) == 1, "structurally identical inner aggregates must share one map"


def test_multi_level_nesting_orders_recomputes_by_depth():
    text = (
        "AggSum([g], R(g, x) * (x < Sum(R(g2, x2) * x2 * (x2 < Sum(R(g3, x3) * x3)))))"
    )
    program = compile_query(parse(text), GROUPED_SCHEMA, name="q")
    trigger = program.trigger_for("R", 1)
    assert len(trigger.recomputes) >= 2
    depths = [recompute.depth for recompute in trigger.recomputes]
    assert depths == sorted(depths), "inner hierarchies must recompute first"


def test_bare_relation_in_operand_rejected():
    with pytest.raises(CompilationError):
        compile_query(parse("Sum(R(g, x) * (x < R(g, y)))"), GROUPED_SCHEMA)


# ---------------------------------------------------------------------------
# Execution equivalence (interpreted, generated, batch, bootstrap)
# ---------------------------------------------------------------------------

NESTED_QUERIES = [
    (GLOBAL_TOTAL, GROUPED_SCHEMA),
    (HAVING_STYLE, GROUPED_SCHEMA),
    (CORRELATED, TWO_RELATIONS),
    ("Sum(R(g, x) * (x < Sum(R(g2, x2) * x2)) * x)", GROUPED_SCHEMA),
    (
        "AggSum([g], R(g, x) * (x < Sum(R(g2, x2) * x2 * (x2 < Sum(R(g3, x3) * x3)))))",
        GROUPED_SCHEMA,
    ),
]


@pytest.mark.parametrize("text,schema", NESTED_QUERIES, ids=[t for t, _ in NESTED_QUERIES])
@pytest.mark.parametrize("backend", ["interpreted", "generated"])
def test_nested_hierarchy_matches_naive(text, schema, backend):
    query = parse(text)
    # The doubly-nested query makes the naive reference cubic per check —
    # keep its cross-checked stream short.
    count = 80 if "x3" in text else 250
    engine = RecursiveIVM(query, schema, backend=backend)
    reference = NaiveReevaluation(query, schema)
    for position, update in enumerate(mixed_stream(schema, count, seed=13)):
        engine.apply(update)
        reference.apply(update)
        if position % 17 == 0 or position == count - 1:
            assert engine.result() == reference.result(), (position, update)


@pytest.mark.parametrize("text,schema", NESTED_QUERIES[:3], ids=[t for t, _ in NESTED_QUERIES[:3]])
def test_nested_batches_match_sequential(text, schema):
    query = parse(text)
    stream = mixed_stream(schema, 220, seed=29)
    reference = NaiveReevaluation(query, schema)
    reference.apply_all(stream)
    rng = random.Random(31)
    for backend in ("interpreted", "generated"):
        engine = RecursiveIVM(query, schema, backend=backend)
        position = 0
        while position < len(stream):
            size = rng.randint(1, 30)
            engine.apply_batch(stream[position : position + size])
            position += size
        assert engine.result() == reference.result(), backend


@pytest.mark.parametrize("text,schema", NESTED_QUERIES[:3], ids=[t for t, _ in NESTED_QUERIES[:3]])
def test_nested_bootstrap_from_populated_database(text, schema):
    query = parse(text)
    db = Database(schema=schema)
    for update in mixed_stream(schema, 120, seed=41):
        db.apply(update)
    reference = NaiveReevaluation(query, schema)
    reference.bootstrap(db)
    for backend in ("interpreted", "generated"):
        engine = RecursiveIVM(query, schema, backend=backend)
        engine.bootstrap(db)
        assert engine.result() == reference.result(), backend
        follow_up = mixed_stream(schema, 80, seed=43)
        clone = NaiveReevaluation(query, schema)
        clone.bootstrap(db)
        for update in follow_up:
            engine.apply(update)
            clone.apply(update)
        assert engine.result() == clone.result(), backend


def test_nested_change_capture_replays_to_result():
    query = parse(HAVING_STYLE)
    for backend in ("interpreted", "generated"):
        engine = RecursiveIVM(query, GROUPED_SCHEMA, backend=backend)
        state = {}

        def replay(changes, state=state):
            for key, value in changes.items():
                total = state.get(key, 0) + value
                if total == 0:
                    state.pop(key, None)
                else:
                    state[key] = total

        engine.on_change(replay)
        for update in mixed_stream(GROUPED_SCHEMA, 200, seed=47):
            engine.apply(update)
        expected = {key: value for key, value in engine.runtime.result_map_contents().items()}
        assert state == expected, backend


def test_interpreted_runtime_statistics_count_recomputes():
    program = compile_query(parse(GLOBAL_TOTAL), GROUPED_SCHEMA, name="q")
    runtime = TriggerRuntime(program)
    runtime.apply(insert("R", 1, 2))
    assert runtime.statistics.statements_executed >= 3  # two folds + one recompute


def test_bootstrap_with_partially_bound_nested_reads():
    """Regression: mid-bootstrap evaluation must not consult the stale slice
    indexes — a map whose definition slice-reads an earlier map used to
    bootstrap empty."""
    schema = {"R": ("G", "X"), "S": ("G", "S", "Y")}
    query = parse("AggSum([g], R(g, x) * AggSum([g, s], S(g, s, y) * y))")
    db = Database(schema=schema)
    for row in [("R", 1, 10), ("R", 1, 20), ("R", 2, 5),
                ("S", 1, 7, 3), ("S", 1, 8, 4), ("S", 2, 7, 5)]:
        db.apply(insert(*row))
    reference = NaiveReevaluation(query, schema)
    reference.bootstrap(db)
    assert reference.result() == {(1,): 14, (2,): 5}
    for backend in ("interpreted", "generated"):
        engine = RecursiveIVM(query, schema, backend=backend)
        engine.bootstrap(db)
        assert engine.result() == reference.result(), backend


def test_closed_form_statements_bind_keys_before_nested_map_reads():
    """Trigger-argument equalities become assignments *before* the map read,
    so the generated code slices the nested map through the index instead of
    scanning it with a post-hoc filter."""
    schema = {"R": ("G", "X"), "S": ("G", "S", "Y")}
    query = parse("AggSum([g], R(g, x) * AggSum([g, s], S(g, s, y) * y))")
    engine = RecursiveIVM(query, schema, backend="generated")
    r_trigger = engine.generated_source().split("def on_insert_R")[1].split("def ")[0]
    assert ".items()" not in r_trigger
    assert "_IDX[" in r_trigger
