"""Tests for the trigger runtime: the Example 1.2 trace, bootstrap, statistics."""

import pytest

from repro.compiler.compile import compile_query
from repro.compiler.runtime import TriggerRuntime
from repro.core.parser import parse
from repro.core.semantics import evaluate
from repro.gmr.database import delete, insert
from repro.gmr.records import EMPTY_RECORD
from repro.workloads.schemas import CUSTOMER_SCHEMA, UNARY_SCHEMA

SELFJOIN = parse("Sum(R(x) * R(y) * (x = y))")

#: The update sequence and expected Q values of the Example 1.2 table.
EXAMPLE_1_2_TRACE = [
    (insert("R", "c"), 1),
    (insert("R", "c"), 4),
    (insert("R", "d"), 5),
    (insert("R", "c"), 10),
    (delete("R", "d"), 9),
    (insert("R", "c"), 16),
    (delete("R", "c"), 9),
]


def make_runtime(query=SELFJOIN, schema=UNARY_SCHEMA, name="q"):
    return TriggerRuntime(compile_query(query, schema, name=name))


def test_example_1_2_query_trace():
    """The maintained Q follows the exact column of the Example 1.2 table."""
    runtime = make_runtime()
    for update, expected in EXAMPLE_1_2_TRACE:
        runtime.apply(update)
        assert runtime.result() == expected


def test_example_1_2_first_delta_views():
    """The auxiliary map holds count(A = a), i.e. the paper's ∆Q(+R(a)) = 1 + 2·count."""
    runtime = make_runtime()
    for update, _expected in EXAMPLE_1_2_TRACE[:4]:
        runtime.apply(update)
    # Database is now {c, c, c, d}: the count map must reflect it.
    [auxiliary] = [name for name in runtime.maps if name != "q"]
    assert runtime.lookup(auxiliary, "c") == 3
    assert runtime.lookup(auxiliary, "d") == 1
    assert runtime.lookup(auxiliary, "missing") == 0


def test_result_for_group_by_queries_is_a_dict():
    query = parse("AggSum([c], C(c, n) * C(c2, n2) * (n = n2))")
    runtime = TriggerRuntime(compile_query(query, CUSTOMER_SCHEMA))
    runtime.apply(insert("C", 1, "FR"))
    runtime.apply(insert("C", 2, "FR"))
    runtime.apply(insert("C", 3, "JP"))
    assert runtime.result() == {(1,): 2, (2,): 2, (3,): 1}
    assert runtime.result_map_contents() == runtime.result()


def test_zero_entries_are_evicted():
    runtime = make_runtime()
    runtime.apply(insert("R", "c"))
    runtime.apply(delete("R", "c"))
    assert runtime.result() == 0
    assert runtime.total_map_entries() == 0


def test_updates_to_unreferenced_relations_are_ignored():
    query = parse("Sum(R(x))")
    program = compile_query(query, {"R": ("A",), "S": ("B",)})
    runtime = TriggerRuntime(program)
    runtime.apply(insert("S", 1))
    assert runtime.result() == 0
    assert runtime.statistics.updates_processed == 1


def test_arity_mismatch_raises():
    runtime = make_runtime()
    with pytest.raises(ValueError):
        runtime.apply(insert("R", 1, 2))


def test_bootstrap_from_existing_database(unary_db):
    runtime = make_runtime()
    runtime.bootstrap(unary_db)
    assert runtime.result() == 5
    runtime.apply(insert("R", "c"))
    db = unary_db.updated(insert("R", "c"))
    assert runtime.result() == evaluate(SELFJOIN, db)[EMPTY_RECORD]


def test_bootstrap_group_by_query(customers_db):
    query = parse("AggSum([c], C(c, n) * C(c2, n2) * (n = n2))")
    runtime = TriggerRuntime(compile_query(query, CUSTOMER_SCHEMA))
    runtime.bootstrap(customers_db)
    assert runtime.result() == {(1,): 2, (2,): 2, (3,): 1, (4,): 3, (5,): 3, (6,): 3}
    runtime.apply(insert("C", 7, "GERMANY"))
    assert runtime.result()[(3,)] == 2
    assert runtime.result()[(7,)] == 2


def test_statistics_accumulate():
    runtime = make_runtime()
    for update, _ in EXAMPLE_1_2_TRACE:
        runtime.apply(update)
    stats = runtime.statistics
    assert stats.updates_processed == len(EXAMPLE_1_2_TRACE)
    assert stats.statements_executed >= stats.updates_processed
    assert stats.entries_updated >= stats.updates_processed
    per_update = stats.per_update()
    assert per_update["statements"] >= 1
    assert runtime.map_sizes()["q"] == 1
    assert "TriggerRuntime" in repr(runtime)


def test_float_ring_runtime():
    from repro.algebra.semirings import FLOAT_FIELD

    query = parse("Sum(R(x) * x)")
    runtime = TriggerRuntime(compile_query(query, UNARY_SCHEMA), ring=FLOAT_FIELD)
    runtime.apply(insert("R", 2.5))
    runtime.apply(insert("R", 1.5))
    runtime.apply(delete("R", 2.5))
    assert runtime.result() == pytest.approx(1.5)
