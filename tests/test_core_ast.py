"""Tests for the AGCA abstract syntax (Section 4 EBNF)."""

import pytest

from repro.core.ast import (
    Add,
    AggSum,
    Assign,
    Compare,
    Const,
    MapRef,
    Mul,
    Neg,
    ONE,
    Rel,
    Sum,
    Var,
    ZERO,
    add,
    as_expr,
    is_one_literal,
    is_zero_literal,
    map_references,
    mul,
    relation_atoms,
    relations_mentioned,
    walk,
)


def test_operator_sugar_builds_expected_nodes():
    x, y = Var("x"), Var("y")
    assert x + y == Add((x, y))
    assert x * y == Mul((x, y))
    assert -x == Neg(x)
    assert (x - y) == Add((x, Neg(y)))
    assert (1 + x) == Add((Const(1), x))
    assert (2 * x) == Mul((Const(2), x))
    assert (3 - x) == Add((Const(3), Neg(x)))


def test_comparison_builders():
    x = Var("x")
    assert x.eq(1) == Compare(x, "=", Const(1))
    assert x.ne(1).op == "!="
    assert x.lt(1).op == "<"
    assert x.le(1).op == "<="
    assert x.gt(1).op == ">"
    assert x.ge(1).op == ">="


def test_compare_rejects_unknown_operator():
    with pytest.raises(ValueError):
        Compare(Var("x"), "~", Const(0))


def test_compare_complement():
    condition = Compare(Var("x"), "<", Const(3))
    assert condition.complement().op == ">="
    assert condition.complement().complement() == condition


def test_as_expr_coercion():
    assert as_expr(3) == Const(3)
    assert as_expr("n") == Const("n")
    assert as_expr(Var("x")) == Var("x")
    with pytest.raises(TypeError):
        as_expr(object())


def test_sum_is_aggsum_without_groups():
    body = Rel("R", ("x",))
    assert Sum(body) == AggSum((), body)
    assert AggSum(["a", "b"], body).group_vars == ("a", "b")


def test_nary_helpers():
    assert add() == ZERO
    assert mul() == ONE
    assert add(Var("x")) == Var("x")
    assert mul(Var("x")) == Var("x")
    assert add(1, 2, Var("x")) == Add((Const(1), Const(2), Var("x")))
    assert mul(Var("x"), 2) == Mul((Var("x"), Const(2)))


def test_literal_predicates():
    assert is_zero_literal(Const(0))
    assert is_zero_literal(Neg(Const(0)))
    assert is_zero_literal(Add((Const(0), Neg(Const(0)))))
    assert not is_zero_literal(Const(1))
    assert not is_zero_literal(Var("x"))
    assert is_one_literal(Const(1))
    assert not is_one_literal(Const(2))


def test_walk_visits_all_nodes_preorder():
    expr = AggSum((), Mul((Rel("R", ("x",)), Compare(Var("x"), "<", Const(3)))))
    nodes = list(walk(expr))
    assert nodes[0] is expr
    assert any(isinstance(node, Rel) for node in nodes)
    assert any(isinstance(node, Const) for node in nodes)
    assert len(nodes) == 6


def test_relation_atoms_and_names():
    expr = Mul((Rel("R", ("x",)), Rel("S", ("x", "y")), MapRef("m", ("x",))))
    atoms = relation_atoms(expr)
    assert [atom.name for atom in atoms] == ["R", "S"]
    assert relations_mentioned(expr) == frozenset({"R", "S"})
    assert [reference.name for reference in map_references(expr)] == ["m"]


def test_nodes_are_hashable_and_structurally_equal():
    left = AggSum(("c",), Mul((Rel("C", ("c", "n")), Var("c"))))
    right = AggSum(("c",), Mul((Rel("C", ("c", "n")), Var("c"))))
    assert left == right
    assert hash(left) == hash(right)
    assert len({left, right}) == 1


def test_children():
    assert Const(1).children() == ()
    assert Neg(Var("x")).children() == (Var("x"),)
    assert Assign("x", Const(1)).children() == (Const(1),)
    assert Compare(Var("x"), "=", Const(1)).children() == (Var("x"), Const(1))
    assert Add((Var("x"), Var("y"))).children() == (Var("x"), Var("y"))


def test_str_uses_concrete_syntax():
    expr = Mul((Rel("R", ("x",)), Var("x")))
    assert str(expr) == "R(x) * x"
