"""Tests for the polynomial degree of queries (Definition 6.3, Theorem 6.4)."""

from hypothesis import given, settings

from repro.core.ast import Const
from repro.core.degree import degree, has_only_simple_conditions, is_simple_condition
from repro.core.delta import UpdateEvent, delta, nth_delta
from repro.core.parser import parse
from tests.conftest import simple_unary_queries


def test_degree_of_leaves():
    assert degree(parse("3")) == 0
    assert degree(parse("x")) == 0
    assert degree(parse("x := 3")) == 0
    assert degree(parse("m[k]")) == 0
    assert degree(parse("R(x)")) == 1


def test_degree_composition_rules():
    assert degree(parse("R(x) * S(y)")) == 2
    assert degree(parse("R(x) * R(y) * R(z)")) == 3
    assert degree(parse("R(x) + S(y) * T(z)")) == 2
    assert degree(parse("-R(x)")) == 1
    assert degree(parse("Sum(R(x) * S(y))")) == 2
    assert degree(parse("(x < 3)")) == 0
    assert degree(parse("(Sum(R(x)) < 3)")) == 1


def test_paper_example_degrees():
    """Example 6.5: deg q = 2, deg ∆q = 1, deg ∆²q = 0."""
    q = parse("Sum(C(c, n) * C(c2, n2) * (n = n2))")
    assert degree(q) == 2
    first = delta(q, UpdateEvent.symbolic(1, "C", 2, prefix="__u1"))
    assert degree(first) == 1
    second = delta(first, UpdateEvent.symbolic(1, "C", 2, prefix="__u2"))
    assert degree(second) == 0
    third = delta(second, UpdateEvent.symbolic(1, "C", 2, prefix="__u3"))
    assert degree(third) == 0


def test_simple_conditions():
    assert is_simple_condition(parse("(x < y)"))
    assert not is_simple_condition(parse("(Sum(R(x)) < 3)"))
    assert has_only_simple_conditions(parse("Sum(R(x) * (x < 3) * S(y))"))
    assert not has_only_simple_conditions(parse("Sum(R(x) * (Sum(S(y)) = 2))"))
    assert has_only_simple_conditions(Const(5))


@settings(max_examples=40, deadline=None)
@given(simple_unary_queries())
def test_theorem_6_4_delta_reduces_degree(query):
    """deg(∆q) = max(0, deg(q) - 1) for queries with simple conditions."""
    event = UpdateEvent.symbolic(1, "R", 1)
    assert degree(delta(query, event)) == max(0, degree(query) - 1)


@settings(max_examples=25, deadline=None)
@given(simple_unary_queries())
def test_degree_many_deltas_vanish(query):
    """The deg(q)-th delta has degree 0 and further deltas stay at 0."""
    events = [UpdateEvent.symbolic(1, "R", 1, prefix=f"__u{i}") for i in range(degree(query) + 2)]
    assert degree(nth_delta(query, events)) == 0


def test_degree_of_three_way_join_chain():
    q = parse("Sum(R(a, b) * S(c, d) * T(e, f) * (b = c) * (d = e) * a * f)")
    assert degree(q) == 3
    after_one = delta(q, UpdateEvent.symbolic(1, "S", 2))
    assert degree(after_one) == 2
