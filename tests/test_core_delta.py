"""Tests for delta queries (Section 6, Proposition 6.1, Examples 6.2/6.5, Example 1.2)."""

import pytest
from hypothesis import given, settings

from repro.core.ast import Const, Rel, Var
from repro.core.degree import degree
from repro.core.delta import UpdateEvent, delta, delta_for_update, nth_delta, symbolic_events_for
from repro.core.errors import DeltaError
from repro.core.parser import parse, to_string
from repro.core.semantics import evaluate
from repro.core.simplify import simplify
from repro.gmr.database import Database, delete, insert
from repro.gmr.records import EMPTY_RECORD
from tests.conftest import simple_unary_queries, unary_update_streams


def scalar(gmr):
    return gmr[EMPTY_RECORD]


# ---------------------------------------------------------------------------
# UpdateEvent
# ---------------------------------------------------------------------------


def test_update_event_constructors():
    concrete = UpdateEvent.from_update(insert("R", 1, "x"))
    assert concrete.args == (Const(1), Const("x"))
    assert concrete.is_insert
    symbolic = UpdateEvent.symbolic(-1, "R", 2)
    assert symbolic.argument_names == ("__d_R_0", "__d_R_1")
    assert not symbolic.is_insert
    with pytest.raises(ValueError):
        UpdateEvent(0, "R", (Const(1),))
    with pytest.raises(DeltaError):
        concrete.argument_names  # concrete components are not variables


def test_symbolic_events_for():
    up, down = symbolic_events_for("S", 2)
    assert up.sign == 1 and down.sign == -1
    assert up.argument_names == down.argument_names


# ---------------------------------------------------------------------------
# The delta rules
# ---------------------------------------------------------------------------


def test_delta_of_leaves_is_zero():
    event = UpdateEvent.symbolic(1, "R", 1)
    assert delta(Const(5), event) == Const(0)
    assert delta(Var("x"), event) == Const(0)
    assert delta(parse("m[k]"), event) == Const(0)
    assert delta(parse("(x < 3)"), event) == Const(0)
    assert delta(Rel("S", ("x",)), event) == Const(0)


def test_delta_of_matching_relation_is_assignment_product():
    event = UpdateEvent(1, "R", (Const(7), Const(8)))
    result = delta(Rel("R", ("x", "y")), event)
    assert to_string(result) == "(x := 7) * (y := 8)"
    negated = delta(Rel("R", ("x", "y")), UpdateEvent(-1, "R", (Const(7), Const(8))))
    assert to_string(negated) == "-((x := 7) * (y := 8))"


def test_delta_arity_mismatch():
    with pytest.raises(DeltaError):
        delta(Rel("R", ("x",)), UpdateEvent(1, "R", (Const(1), Const(2))))


def test_delta_of_assignment_with_database_dependent_source():
    with pytest.raises(DeltaError):
        delta(parse("x := Sum(R(y))"), UpdateEvent.symbolic(1, "R", 1))
    assert delta(parse("x := 3"), UpdateEvent.symbolic(1, "R", 1)) == Const(0)


def test_example_1_2_delta_values(unary_db):
    """∆Q(R, ±R(a)) = 1 ± 2 * count(A = a) on R = {c, c, d}."""
    query = parse("Sum(R(x) * R(y) * (x = y))")
    assert scalar(evaluate(query, unary_db)) == 5
    assert scalar(evaluate(delta_for_update(query, insert("R", "c")), unary_db)) == 1 + 2 * 2
    assert scalar(evaluate(delta_for_update(query, delete("R", "c")), unary_db)) == 1 - 2 * 2
    assert scalar(evaluate(delta_for_update(query, insert("R", "d")), unary_db)) == 1 + 2 * 1
    assert scalar(evaluate(delta_for_update(query, delete("R", "d")), unary_db)) == 1 - 2 * 1
    assert scalar(evaluate(delta_for_update(query, insert("R", "zzz")), unary_db)) == 1


def test_example_1_2_second_delta_is_constant(unary_db):
    """∆²Q = ±2 when the two updates touch the same value, 0 otherwise."""
    query = parse("Sum(R(x) * R(y) * (x = y))")
    cases = [
        (insert("R", "a"), insert("R", "a"), 2),
        (delete("R", "a"), delete("R", "a"), 2),
        (insert("R", "a"), delete("R", "a"), -2),
        (delete("R", "a"), insert("R", "a"), -2),
        (insert("R", "a"), insert("R", "b"), 0),
    ]
    for first, second, expected in cases:
        second_delta = delta_for_update(delta_for_update(query, first), second)
        value = scalar(evaluate(second_delta, unary_db))
        assert value == expected, (first, second, value)
        # Constant: the same value on a different database (the empty one).
        empty = Database({"R": ("A",)})
        assert scalar(evaluate(second_delta, empty)) == expected


def test_third_delta_is_identically_zero(unary_db):
    query = parse("Sum(R(x) * R(y) * (x = y))")
    events = [UpdateEvent.from_update(insert("R", "a"))] * 3
    third = nth_delta(query, events)
    assert evaluate(third, unary_db).is_zero()
    assert degree(third) == 0


def test_example_6_2_structure():
    """Example 6.2: the delta of the same-nation query has the three product-rule terms."""
    query = parse("Sum(C(c, n) * C(c2, n2) * (n = n2))")
    event = UpdateEvent(1, "C", (Const(10), Const("FR")))
    raw = delta(query, event)
    text = to_string(raw)
    assert text.count("C(") == 2  # one remaining relation atom per mixed term
    assert "c := 10" in text and "c2 := 10" in text


def test_non_simple_condition_uses_truth_table_rule(unary_db):
    """∆(t θ 0) for a condition containing an aggregate: the (new ∧ ¬old) − (old ∧ ¬new) rule."""
    query = parse("Sum(R(x) * (Sum(R(y)) >= 4))")
    # Current count is 3, so the condition is false and Q = 0; inserting one
    # tuple makes the count 4, so Q jumps to 4.
    assert evaluate(query, unary_db).is_zero()
    update = insert("R", "e")
    change = evaluate(delta_for_update(query, update), unary_db)
    after = unary_db.updated(update)
    assert scalar(evaluate(query, after)) == 4
    assert scalar(change) == 4


# ---------------------------------------------------------------------------
# Proposition 6.1: [[q]](D + u) = [[q]](D) + [[∆_u q]](D)
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(simple_unary_queries(), unary_update_streams())
def test_proposition_6_1_along_streams(query, updates):
    db = Database({"R": ("A",)})
    for update in updates[:8]:
        before = evaluate(query, db)
        change = evaluate(delta_for_update(query, update), db)
        db.apply(update)
        after = evaluate(query, db)
        assert after == before + change


@settings(max_examples=25, deadline=None)
@given(simple_unary_queries(), unary_update_streams())
def test_second_order_proposition_6_1(query, updates):
    """The delta of a delta again satisfies Proposition 6.1."""
    if len(updates) < 2:
        return
    db = Database({"R": ("A",)})
    probe = updates[0]
    first = delta_for_update(query, probe)
    for update in updates[1:5]:
        before = evaluate(first, db)
        change = evaluate(delta_for_update(first, update), db)
        db.apply(update)
        after = evaluate(first, db)
        assert after == before + change


def test_delta_on_group_by_query(customers_db):
    query = parse("AggSum([c], C(c, n) * C(c2, n2) * (n = n2))")
    update = insert("C", 7, "JAPAN")
    change = evaluate(delta_for_update(query, update), customers_db)
    after = customers_db.updated(update)
    assert evaluate(query, after) == evaluate(query, customers_db) + change


def test_simplified_delta_still_correct(rst_db):
    query = parse("Sum(R(a, b) * S(c, d) * T(e, f) * (b = c) * (d = e) * a * f)")
    update = insert("S", 10, 200)
    raw = delta_for_update(query, update)
    tidy = simplify(raw)
    assert evaluate(raw, rst_db) == evaluate(tidy, rst_db)
    after = rst_db.updated(update)
    assert evaluate(query, after) == evaluate(query, rst_db) + evaluate(tidy, rst_db)
