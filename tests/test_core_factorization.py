"""Tests for monomial factorization into variable-connected components (Example 1.3)."""

from repro.core.ast import Compare, Rel
from repro.core.delta import UpdateEvent, delta
from repro.core.factorization import (
    Component,
    connected_components,
    factorization_width,
    factorize_monomial,
)
from repro.core.normalization import Monomial, monomials_of
from repro.core.parser import parse, to_string
from repro.core.simplify import simplify


def factors_of(text):
    [monomial] = monomials_of(parse(text))
    return monomial.factors


def test_single_component_when_variables_chain():
    components = connected_components(factors_of("R(a, b) * S(b, c) * T(c, d)"))
    assert len(components) == 1
    assert components[0].has_relations


def test_disconnected_relations_split():
    components = connected_components(factors_of("R(a, b) * S(c, d)"))
    assert len(components) == 2
    assert all(component.has_relations for component in components)


def test_separator_variables_do_not_connect():
    factors = factors_of("R(a, b) * (b = u) * S(c, d) * (d = u)")
    joined = connected_components(factors)
    assert len(joined) == 1
    split = connected_components(factors, separator_vars={"u"})
    assert len(split) == 2


def test_conditions_stay_with_their_relations():
    factors = factors_of("R(a, b) * (a < 3) * S(c, d) * (c = 5)")
    components = connected_components(factors)
    assert len(components) == 2
    first, second = components
    assert any(isinstance(factor, Compare) for factor in first.factors)
    assert any(isinstance(factor, Compare) for factor in second.factors)


def test_component_order_and_variables():
    factors = factors_of("R(a, b) * S(c, d)")
    first, second = connected_components(factors)
    assert first.variables == frozenset({"a", "b"})
    assert second.variables == frozenset({"c", "d"})
    assert to_string(first.to_expr()) == "R(a, b)"
    assert "Component" in repr(first)


def test_pure_value_factors_form_their_own_component():
    factors = factors_of("R(a, b) * u")
    components = connected_components(factors, separator_vars={"u"})
    assert len(components) == 2
    assert not components[1].has_relations


def test_empty_monomial():
    assert connected_components(()) == []
    assert factorization_width(Monomial(1, ())) == 0


def test_example_1_3_delta_factorizes_into_two_linear_views():
    """The delta of the three-way join w.r.t. ±S factorizes into an R-part and a T-part."""
    query = parse("Sum(R(a, b) * S(c, d) * T(e, f) * (b = c) * (d = e) * a * f)")
    event = UpdateEvent.symbolic(1, "S", 2)
    simplified = simplify(
        delta(query, event),
        bound_vars=event.argument_names,
        needed_vars=set(event.argument_names),
    )
    # The simplified delta is a single aggregate over one monomial.
    [monomial] = monomials_of(simplified.expr)
    coefficient, components = factorize_monomial(monomial, separator_vars=event.argument_names)
    assert coefficient == 1
    relation_components = [component for component in components if component.has_relations]
    assert len(relation_components) == 2
    names = {atom.name for component in relation_components for atom in component.factors if isinstance(atom, Rel)}
    assert names == {"R", "T"}
    assert factorization_width(monomial, separator_vars=event.argument_names) == 2
    # The original (un-differentiated) body is a single connected component:
    # without taking the delta there is nothing to factorize.
    [body_monomial] = monomials_of(parse(
        "R(a, b) * S(c, d) * T(e, f) * (b = c) * (d = e) * a * f"
    ))
    assert factorization_width(body_monomial) == 1
