"""Tests for the polynomial normal form (Section 5)."""

import pytest
from hypothesis import given, settings

from repro.core.ast import Add, AggSum, Const, Neg, Rel, Var
from repro.core.normalization import (
    Monomial,
    combine_like_terms,
    from_polynomial,
    monomials_of,
    polynomial_normal_form,
    to_polynomial,
)
from repro.core.parser import parse, to_string
from repro.core.semantics import evaluate
from repro.gmr.database import Database
from tests.conftest import simple_unary_queries, unary_update_streams


def test_constants_and_leaves():
    assert to_polynomial(Const(0)) == []
    assert to_polynomial(Const(3)) == [Monomial(3, ())]
    assert to_polynomial(Var("x")) == [Monomial(1, (Var("x"),))]
    assert to_polynomial(Rel("R", ("x",))) == [Monomial(1, (Rel("R", ("x",)),))]


def test_non_numeric_constant_rejected():
    with pytest.raises(TypeError):
        to_polynomial(Const("FR"))


def test_negation_scales_coefficients():
    assert to_polynomial(Neg(Const(3))) == [Monomial(-3, ())]
    assert to_polynomial(Neg(Neg(Var("x")))) == [Monomial(1, (Var("x"),))]


def test_distribution_of_products_over_sums():
    expr = parse("(R(x) + S(y)) * (T(z) + 2)")
    monomials = to_polynomial(expr)
    assert len(monomials) == 4
    rendered = {to_string(monomial.to_expr()) for monomial in monomials}
    assert "R(x) * T(z)" in rendered
    assert "2 * S(y)" in rendered or "S(y) * 2" in rendered


def test_factor_order_is_preserved():
    expr = parse("R(x) * (x < 3) * S(y)")
    [monomial] = to_polynomial(expr)
    kinds = [type(factor).__name__ for factor in monomial.factors]
    assert kinds == ["Rel", "Compare", "Rel"]


def test_combine_like_terms_merges_and_drops_zero():
    a = Monomial(2, (Var("x"),))
    b = Monomial(3, (Var("x"),))
    c = Monomial(-5, (Var("x"),))
    d = Monomial(4, (Var("y"),))
    combined = combine_like_terms([a, b, c, d])
    assert combined == [Monomial(4, (Var("y"),))]


def test_monomial_to_expr_coefficients():
    assert Monomial(1, (Var("x"),)).to_expr() == Var("x")
    assert Monomial(-1, (Var("x"),)).to_expr() == Neg(Var("x"))
    assert Monomial(0, (Var("x"),)).to_expr() == Const(0)
    assert to_string(Monomial(2, (Var("x"),)).to_expr()) == "2 * x"
    assert Monomial(7, ()).to_expr() == Const(7)


def test_from_polynomial_shapes():
    assert from_polynomial([]) == Const(0)
    assert from_polynomial([Monomial(1, (Var("x"),))]) == Var("x")
    rebuilt = from_polynomial([Monomial(1, (Var("x"),)), Monomial(2, ())])
    assert isinstance(rebuilt, Add)


def test_monomial_helpers():
    monomial = Monomial(2, (Rel("R", ("x",)), Var("x")))
    assert not monomial.is_zero()
    assert monomial.scaled(-1).coefficient == -2
    assert monomial.relation_atoms() == (Rel("R", ("x",)),)
    assert "R(x)" in repr(monomial)
    product = monomial.times(Monomial(3, (Var("y"),)))
    assert product.coefficient == 6
    assert len(product.factors) == 3


def test_aggregates_are_atomic_factors():
    expr = parse("Sum(R(x)) * 2")
    [monomial] = to_polynomial(expr)
    assert monomial.coefficient == 2
    assert isinstance(monomial.factors[0], AggSum)


def test_normal_form_cancels_opposite_terms(unary_db):
    expr = parse("R(x) - R(x)")
    assert polynomial_normal_form(expr) == Const(0)
    assert monomials_of(parse("R(x) * 2 - R(x) - R(x)")) == []


@settings(max_examples=40, deadline=None)
@given(simple_unary_queries(), unary_update_streams())
def test_normal_form_preserves_semantics(query, updates):
    """Expanding to polynomial normal form never changes the query's meaning."""
    db = Database({"R": ("A",)})
    db.apply_all(updates[:10])
    body = query.expr
    assert evaluate(body, db) == evaluate(polynomial_normal_form(body), db)
