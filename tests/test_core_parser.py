"""Tests for the AGCA concrete syntax (parser and pretty printer)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.ast import (
    Add,
    AggSum,
    Assign,
    Compare,
    Const,
    MapRef,
    Mul,
    Neg,
    Rel,
    Var,
)
from repro.core.errors import ParseError
from repro.core.parser import parse, to_string, tokenize


def test_tokenize_kinds():
    tokens = tokenize("Sum(R(x) * 3.5 + 'abc') != :=")
    kinds = [token.kind for token in tokens]
    assert "IDENT" in kinds and "NUMBER" in kinds and "STRING" in kinds
    assert "CMP" in kinds and "ASSIGN" in kinds


def test_tokenize_rejects_junk():
    with pytest.raises(ParseError):
        tokenize("R(x) $ 3")


def test_parse_constants_and_variables():
    assert parse("42") == Const(42)
    assert parse("3.5") == Const(3.5)
    assert parse("'FRANCE'") == Const("FRANCE")
    assert parse("x") == Var("x")


def test_parse_relation_and_mapref():
    assert parse("R(x, y)") == Rel("R", ("x", "y"))
    assert parse("m[x, y]") == MapRef("m", ("x", "y"))
    assert parse("R()") == Rel("R", ())


def test_parse_sum_and_aggsum():
    assert parse("Sum(R(x))") == AggSum((), Rel("R", ("x",)))
    assert parse("AggSum([a, b], R(a, b))") == AggSum(("a", "b"), Rel("R", ("a", "b")))
    assert parse("AggSum([], R(a, b))") == AggSum((), Rel("R", ("a", "b")))


def test_parse_products_and_sums_with_precedence():
    expr = parse("R(x) * S(y) + T(z)")
    assert isinstance(expr, Add)
    assert isinstance(expr.terms[0], Mul)
    expr2 = parse("R(x) * (S(y) + T(z))")
    assert isinstance(expr2, Mul)
    assert isinstance(expr2.factors[1], Add)


def test_parse_subtraction_and_negation():
    expr = parse("R(x) - S(y)")
    assert expr == Add((Rel("R", ("x",)), Neg(Rel("S", ("y",)))))
    assert parse("-R(x)") == Neg(Rel("R", ("x",)))
    assert parse("- -x") == Neg(Neg(Var("x")))


def test_parse_conditions():
    assert parse("(x < y)") == Compare(Var("x"), "<", Var("y"))
    assert parse("(x = 3)") == Compare(Var("x"), "=", Const(3))
    assert parse("(Sum(R(x)) >= 5)") == Compare(AggSum((), Rel("R", ("x",))), ">=", Const(5))
    nested = parse("R(x, y) * (x != y)")
    assert isinstance(nested.factors[1], Compare)


def test_parse_assignment():
    assert parse("x := 3") == Assign("x", Const(3))
    assert parse("(x := y) * R(x)") == Mul((Assign("x", Var("y")), Rel("R", ("x",))))


def test_parse_paper_example_queries():
    q52 = parse("Sum(C(c, n) * C(c2, n2) * (n = n2))")
    assert isinstance(q52, AggSum)
    q13 = parse("Sum(R(a, b) * S(c, d) * T(e, f) * (b = c) * (d = e) * a * f)")
    assert len(q13.expr.factors) == 7


def test_parse_errors():
    with pytest.raises(ParseError):
        parse("")
    with pytest.raises(ParseError):
        parse("R(x")
    with pytest.raises(ParseError):
        parse("R(x) R(y)")
    with pytest.raises(ParseError):
        parse("(x <)")
    with pytest.raises(ParseError):
        parse("AggSum(x, R(x))")


def test_to_string_output_shapes():
    assert to_string(Const("FR")) == "'FR'"
    assert to_string(MapRef("m", ("a", "b"))) == "m[a, b]"
    assert to_string(AggSum((), Rel("R", ("x",)))) == "Sum(R(x))"
    assert to_string(AggSum(("a",), Rel("R", ("a",)))) == "AggSum([a], R(a))"
    assert to_string(Neg(Add((Var("x"), Var("y"))))) == "-(x + y)"
    assert to_string(Mul((Assign("x", Const(1)), Rel("R", ("x",))))) == "(x := 1) * R(x)"


EXAMPLES = [
    "Sum(R(x) * R(y) * (x = y))",
    "AggSum([c], C(c, n) * C(c2, n2) * (n = n2))",
    "Sum(R(a, b) * S(c, d) * T(e, f) * (b = c) * (d = e) * a * f)",
    "R(x) * (x < 3) + -S(y) * 2",
    "m[a, b] * (a := 5) * (b >= 2)",
    "Sum(R(x, y) * 3 * x)",
]


@pytest.mark.parametrize("text", EXAMPLES)
def test_roundtrip_through_pretty_printer(text):
    expr = parse(text)
    assert parse(to_string(expr)) == expr


@given(st.integers(min_value=-100, max_value=100))
def test_integer_constants_roundtrip(value):
    expr = Const(value) if value >= 0 else Neg(Const(-value))
    assert parse(to_string(expr)) == expr
