"""Tests for the abstract recursive-delta memoization of Section 1.1 (Figure 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.polynomials import Polynomial, square_polynomial
from repro.core.recursive_delta import PolynomialFunction, RecursiveDeltaMemo, figure1_rows

updates_pm1 = st.lists(st.sampled_from([-1, +1]), max_size=25)
coefficients = st.lists(st.integers(min_value=-4, max_value=4), max_size=4)


def make_memo(polynomial, initial_point=0, updates=(-1, +1)):
    return RecursiveDeltaMemo(PolynomialFunction(polynomial), updates, initial_point)


# ---------------------------------------------------------------------------
# Figure 1
# ---------------------------------------------------------------------------

#: The seven memoized values of Figure 1 for x = -2 .. 4:
#: (x, f(x), ∆f(x,-1), ∆f(x,+1), ∆²f(-1,-1), ∆²f(-1,+1), ∆²f(+1,-1), ∆²f(+1,+1))
FIGURE_1 = [
    (-2, 4, 5, -3, 2, -2, -2, 2),
    (-1, 1, 3, -1, 2, -2, -2, 2),
    (0, 0, 1, 1, 2, -2, -2, 2),
    (1, 1, -1, 3, 2, -2, -2, 2),
    (2, 4, -3, 5, 2, -2, -2, 2),
    (3, 9, -5, 7, 2, -2, -2, 2),
    (4, 16, -7, 9, 2, -2, -2, 2),
]


@pytest.mark.parametrize("row", FIGURE_1, ids=[str(row[0]) for row in FIGURE_1])
def test_figure_1_values_from_definitions(row):
    """The memo initialized at x holds exactly the row of Figure 1."""
    x, fx, d_minus, d_plus, d_mm, d_mp, d_pm, d_pp = row
    memo = make_memo(square_polynomial(), initial_point=x)
    assert memo.value() == fx
    assert memo.delta_value(-1) == d_minus
    assert memo.delta_value(+1) == d_plus
    assert memo.delta_value(-1, -1) == d_mm
    assert memo.delta_value(-1, +1) == d_mp
    assert memo.delta_value(+1, -1) == d_pm
    assert memo.delta_value(+1, +1) == d_pp
    assert memo.memo_size == 7
    assert memo.order == 3


def test_figure1_rows_helper_matches_table():
    rows = figure1_rows()
    assert len(rows) == 7
    first = rows[0]
    assert first["x"] == -2 and first["f(x)"] == 4
    assert first["df(x,-1)"] == 5 and first["df(x,+1)"] == -3
    assert first["d2f(x,+1,+1)"] == 2 and first["d2f(x,-1,+1)"] == -2


def test_update_walks_along_figure_1_rows():
    """Applying +1 / -1 moves the memoized row to its successor / predecessor."""
    memo = make_memo(square_polynomial(), initial_point=-2)
    for expected in FIGURE_1[1:]:
        memo.apply(+1)
        assert memo.value() == expected[1]
        assert memo.delta_value(-1) == expected[2]
        assert memo.delta_value(+1) == expected[3]
    for expected in reversed(FIGURE_1[:-1]):
        memo.apply(-1)
        assert memo.value() == expected[1]


def test_example_walkthrough_from_the_paper():
    """Section 1.1: at x = 3, incrementing by 1 adds 7 to f, 2 to ∆f(+1), -2 to ∆f(-1)."""
    memo = make_memo(square_polynomial(), initial_point=3)
    assert memo.value() == 9
    new_value = memo.apply(+1)
    assert new_value == 16
    assert memo.delta_value(+1) == 9
    assert memo.delta_value(-1) == -7


# ---------------------------------------------------------------------------
# General properties
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(coefficients, updates_pm1)
def test_memo_tracks_direct_evaluation(coefficient_list, updates):
    polynomial = Polynomial(coefficient_list)
    memo = make_memo(polynomial, initial_point=0)
    point = 0
    for update in updates:
        memo.apply(update)
        point += update
        assert memo.value() == polynomial(point)
    assert memo.point == point


@settings(max_examples=20, deadline=None)
@given(coefficients, updates_pm1)
def test_all_delta_levels_stay_consistent(coefficient_list, updates):
    polynomial = Polynomial(coefficient_list)
    memo = make_memo(polynomial, initial_point=0)
    memo.apply_all(updates)
    point = memo.point
    assert memo.delta_value(+1) == polynomial.delta(+1)(point)
    assert memo.delta_value(-1, +1) == polynomial.delta(-1).delta(+1)(point)


def test_memo_size_bounded_by_geometric_sum():
    cubic = Polynomial([0, 0, 0, 1])
    memo = make_memo(cubic, initial_point=1)
    # |U|^0 + |U|^1 + ... + |U|^(k-1) with k = 4 and |U| = 2, minus pruned zeros.
    assert memo.order == 4
    assert memo.memo_size <= 1 + 2 + 4 + 8


def test_updates_only_use_additions():
    memo = make_memo(square_polynomial(), initial_point=0)
    initial_evaluations = memo.initial_evaluations
    memo.apply_all([+1, +1, -1, +1])
    # After initialization nothing is re-evaluated from the definition; each
    # update costs at most memo_size additions.
    assert memo.initial_evaluations == initial_evaluations
    assert memo.additions_performed <= 4 * memo.memo_size


def test_constant_function_needs_single_entry():
    memo = make_memo(Polynomial([5]), initial_point=10)
    assert memo.order == 1
    assert memo.memo_size == 1
    memo.apply(+1)
    assert memo.value() == 5


def test_zero_polynomial():
    memo = make_memo(Polynomial([]), initial_point=0)
    assert memo.order == 0
    assert memo.memo_size == 1
    memo.apply(+1)
    assert memo.value() == 0


def test_unknown_update_rejected():
    memo = make_memo(square_polynomial(), initial_point=0)
    with pytest.raises(ValueError):
        memo.apply(+2)


def test_snapshot_is_a_copy():
    memo = make_memo(square_polynomial(), initial_point=0)
    snapshot = memo.snapshot()
    memo.apply(+1)
    assert snapshot[()] == 0
    assert memo.value() == 1
