"""Tests for the AGCA denotational semantics (Section 4, Examples 4.1–4.4, 5.2)."""

import pytest

from repro.core.ast import AggSum, Const, MapRef, Rel, Var
from repro.core.errors import NotScalarError, SchemaError, UnboundVariableError
from repro.core.parser import parse
from repro.core.semantics import evaluate, evaluate_value, meaning
from repro.gmr.database import Database
from repro.gmr.records import EMPTY_RECORD, Record
from repro.gmr.relation import GMR


def scalar(result):
    return result[EMPTY_RECORD]


# ---------------------------------------------------------------------------
# Leaves
# ---------------------------------------------------------------------------


def test_constants(unary_db):
    assert scalar(evaluate(Const(7), unary_db)) == 7
    assert evaluate(Const(0), unary_db).is_zero()


def test_variables_require_bindings(unary_db):
    with pytest.raises(UnboundVariableError):
        evaluate(Var("x"), unary_db)
    assert scalar(evaluate(Var("x"), unary_db, Record.of(x=4))) == 4


def test_relation_atom_renames_columns(customers_db):
    """Example 4.1: R(x, y) renames the stored columns and filters on bound variables."""
    result = evaluate(Rel("C", ("x", "y")), customers_db)
    assert result[Record.of(x=1, y="FRANCE")] == 1
    assert len(result) == 6
    bound = evaluate(Rel("C", ("x", "y")), customers_db, Record.of(y="JAPAN"))
    assert len(bound) == 3
    assert all(record["y"] == "JAPAN" for record in bound.support())


def test_relation_atom_with_repeated_variable():
    db = Database({"E": ("src", "dst")})
    db.load("E", [(1, 1), (1, 2), (2, 2)])
    loops = evaluate(Rel("E", ("x", "x")), db)
    assert len(loops) == 2
    assert loops[Record.of(x=1)] == 1


def test_relation_arity_mismatch_is_an_error(unary_db):
    with pytest.raises(SchemaError):
        evaluate(Rel("R", ("x", "y")), unary_db)


# ---------------------------------------------------------------------------
# Connectives
# ---------------------------------------------------------------------------


def test_example_4_2_conditions():
    """Example 4.2: conditions under sideways bindings on a schema-polymorphic gmr.

    The input gmr is the already-renamed ``[[R(x, y)]](A)(⟨⟩)`` of the paper
    (its records have differing schemas), so the product is formed in the
    avalanche ring with the evaluator supplying the condition semantics.
    """
    from repro.gmr.parametrized import PGMR
    from repro.core.semantics import meaning

    db = Database({"R": ("a", "b")})
    a1, a2, a3, a4 = 2, 3, 5, 7
    relation = GMR(
        {
            Record.of(x=1): a1,
            Record.of(y=1): a2,
            Record.of(x=1, y=1): a3,
            Record.of(x=1, y=2): a4,
        }
    )
    result_lt = (PGMR.lift(relation) * meaning(parse("(x < y)"), db))(EMPTY_RECORD)
    result_eq = (PGMR.lift(relation) * meaning(parse("(x = y)"), db))(EMPTY_RECORD)
    assert dict(result_lt.items()) == {Record.of(x=1, y=2): a4}
    assert dict(result_eq.items()) == {Record.of(x=1, y=1): a1 + a2 + a3}


def test_example_4_3_sum_of_values():
    """Example 4.3: Sum(R(x, y) * 3 * x) = Σ multiplicities * 3 * x."""
    db = Database({"R": ("a", "b")})
    db.set_relation(
        "R",
        GMR({Record.of(a=4, b=10): 2, Record.of(a=6, b=20): 5}),
    )
    result = evaluate(parse("Sum(R(x, y) * 3 * x)"), db)
    assert scalar(result) == 2 * 3 * 4 + 5 * 3 * 6


def test_example_4_4_constructing_gmrs_from_scratch():
    """Example 4.4: assignments build tuples without touching the database."""
    db = Database()
    bindings = Record.of(x1="a1", y1="b1", x2="a2", z=2)
    expr = parse("(x := x1) * (y := y1) * z + (x := x2) * (-3)")
    result = evaluate(expr, db, bindings)
    assert result[Record.of(x="a1", y="b1")] == 2
    assert result[Record.of(x="a2")] == -3
    assert len(result) == 2


def test_example_5_2_group_by(customers_db):
    """Example 5.2: customers of the same nation, per customer."""
    query = parse("AggSum([c], C(c, n) * C(c2, n2) * (n = n2))")
    result = evaluate(query, customers_db)
    per_customer = {record["c"]: value for record, value in result.items()}
    assert per_customer == {1: 2, 2: 2, 3: 1, 4: 3, 5: 3, 6: 3}
    # Evaluating with c bound gives a single group (the v of the example).
    bound = evaluate(query, customers_db, Record.of(c=4))
    assert dict(bound.items()) == {Record.of(c=4): 3}


def test_sum_collapses_to_nullary_tuple(unary_db):
    result = evaluate(parse("Sum(R(x))"), unary_db)
    assert dict(result.items()) == {EMPTY_RECORD: 3}


def test_products_pass_bindings_sideways(unary_db):
    # The second occurrence of R sees x bound by the first: a self-join on A.
    result = evaluate(parse("Sum(R(x) * R(x))"), unary_db)
    assert scalar(result) == 2 * 2 + 1 * 1


def test_addition_and_negation(unary_db):
    assert scalar(evaluate(parse("Sum(R(x)) + 2"), unary_db)) == 5
    assert scalar(evaluate(parse("-Sum(R(x))"), unary_db)) == -3
    assert scalar(evaluate(parse("Sum(R(x)) - Sum(R(y))"), unary_db)) == 0


def test_conditions_with_string_constants(customers_db):
    query = parse("Sum(C(c, n) * (n = 'JAPAN'))")
    assert scalar(evaluate(query, customers_db)) == 3
    query_ne = parse("Sum(C(c, n) * (n != 'JAPAN'))")
    assert scalar(evaluate(query_ne, customers_db)) == 3


def test_nested_aggregate_in_condition(unary_db):
    """Conditions may contain aggregates (nested queries), per the calculus."""
    query = parse("Sum(R(x) * (Sum(R(y)) >= 3))")
    assert scalar(evaluate(query, unary_db)) == 3
    query_false = parse("Sum(R(x) * (Sum(R(y)) > 3))")
    assert evaluate(query_false, unary_db).is_zero()


def test_assignment_of_bound_variable_acts_as_equality(unary_db):
    expr = parse("(x := 3)")
    assert evaluate(expr, unary_db, Record.of(x=3))[EMPTY_RECORD.extend(x=3)] == 1
    assert evaluate(expr, unary_db, Record.of(x=4)).is_zero()


def test_aggsum_group_variable_from_binding(unary_db):
    expr = AggSum(("g",), Rel("R", ("x",)))
    result = evaluate(expr, unary_db, Record.of(g="group1"))
    assert result[Record.of(g="group1")] == 3
    with pytest.raises(UnboundVariableError):
        evaluate(expr, unary_db)


def test_evaluate_value_arithmetic(unary_db):
    bindings = Record.of(x=4, y=10)
    assert evaluate_value(parse("x * y + 2"), unary_db, bindings) == 42
    assert evaluate_value(parse("-x"), unary_db, bindings) == -4
    assert evaluate_value(Const("FR"), unary_db) == "FR"
    assert evaluate_value(parse("Sum(R(z))"), unary_db) == 3


def test_evaluate_value_rejects_non_scalar(unary_db):
    with pytest.raises(NotScalarError):
        evaluate_value(Rel("R", ("x",)), unary_db)


def test_map_reference_environment(unary_db):
    maps = {"m": {(1,): 10, (2,): 0}}
    expr = MapRef("m", ("k",))
    result = evaluate(expr, unary_db, maps=maps)
    assert dict(result.items()) == {Record.of(k=1): 10}
    with pytest.raises(SchemaError):
        evaluate(MapRef("missing", ("k",)), unary_db, maps=maps)
    with pytest.raises(SchemaError):
        evaluate(MapRef("missing", ("k",)), unary_db)


def test_meaning_is_a_pgmr(customers_db):
    query = parse("AggSum([c], C(c, n) * C(c2, n2) * (n = n2))")
    pgmr = meaning(query, customers_db)
    assert pgmr(Record.of(c=4))[Record.of(c=4)] == 3
