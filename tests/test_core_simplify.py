"""Tests for algebraic simplification, substitution and safety reordering."""

from hypothesis import given, settings

from repro.core.ast import Assign, Compare, Const, MapRef, Rel, Var
from repro.core.delta import UpdateEvent, delta
from repro.core.parser import parse, to_string
from repro.core.semantics import evaluate
from repro.core.simplify import (
    make_safe,
    order_for_safety,
    rename_variables,
    simplify,
    simplify_monomial,
    substitute,
)
from repro.core.normalization import Monomial
from repro.gmr.database import Database
from repro.gmr.records import Record
from tests.conftest import simple_unary_queries, unary_update_streams


# ---------------------------------------------------------------------------
# substitution / renaming
# ---------------------------------------------------------------------------


def test_substitute_variables_and_constants():
    expr = parse("R(x, y) * (x < z) * z")
    substituted = substitute(expr, {"z": Const(5), "x": Var("a")})
    assert to_string(substituted) == "R(a, y) * (a < 5) * 5"


def test_substitute_does_not_touch_assignment_targets():
    expr = Assign("x", Var("y"))
    assert substitute(expr, {"x": Var("z"), "y": Const(3)}) == Assign("x", Const(3))


def test_substitute_constant_into_binding_position_is_skipped():
    expr = Rel("R", ("x", "y"))
    # Constants cannot appear as relation columns; the atom is left unchanged.
    assert substitute(expr, {"x": Const(3)}) == expr
    assert substitute(MapRef("m", ("x",)), {"x": Const(3)}) == MapRef("m", ("x",))


def test_rename_variables_renames_binding_positions_too():
    expr = parse("AggSum([g], R(x, y) * (x := 3) * m[x, g])")
    renamed = rename_variables(expr, {"x": "k0", "g": "k1"})
    assert to_string(renamed) == "AggSum([k1], R(k0, y) * (k0 := 3) * m[k0, k1])"


# ---------------------------------------------------------------------------
# monomial simplification
# ---------------------------------------------------------------------------


def test_static_condition_folding():
    assert simplify(parse("R(x) * (1 < 2)")) == parse("R(x)")
    assert simplify(parse("R(x) * (2 < 1)")) == Const(0)
    assert simplify(parse("R(x) * (y = y)"), bound_vars={"y"}) == parse("R(x)")
    assert simplify(parse("R(x) * (x != x)")) == Const(0)


def test_constant_folding_into_coefficients():
    assert simplify(parse("2 * R(x) * 3")) == parse("6 * R(x)")
    assert simplify(parse("R(x) * 0")) == Const(0)
    assert simplify(parse("R(x) * 1")) == parse("R(x)")


def test_like_terms_are_combined():
    assert simplify(parse("R(x) + R(x)")) == parse("2 * R(x)")
    assert simplify(parse("R(x) - R(x)")) == Const(0)


def test_assignment_elimination_with_variable_source():
    expr = parse("(x := u) * R(x) * x")
    tidy = simplify(expr, bound_vars={"u"}, needed_vars={"u"})
    assert to_string(tidy) == "R(u) * u"


def test_assignment_kept_when_needed():
    expr = parse("(x := u) * R(y)")
    tidy = simplify(expr, bound_vars={"u"}, needed_vars={"x", "u"})
    assert "x := u" in to_string(tidy)


def test_assignment_with_constant_source_kept_for_relation_columns():
    expr = parse("(x := 3) * R(x)")
    tidy = simplify(expr, bound_vars=(), needed_vars=set())
    # The constant cannot be inlined into the relation atom, so the assignment stays.
    assert to_string(tidy) == "(x := 3) * R(x)"


def test_equality_converted_to_assignment_when_one_side_unbound():
    expr = parse("R(x) * (y = x) * S(y)")
    tidy = simplify(expr, needed_vars={"x", "y"})
    assert "y := x" in to_string(tidy)


def test_repeated_assignment_acts_as_equality():
    expr = parse("(x := 1) * (x := 2)")
    assert simplify(expr, needed_vars={"x"}) == Const(0)
    expr_same = parse("(x := 1) * (x := 1)")
    assert to_string(simplify(expr_same, needed_vars={"x"})) == "x := 1"


def test_simplify_recurses_into_aggregates():
    expr = parse("Sum(R(x) * (1 = 1) * 2)")
    assert simplify(expr) == parse("Sum(2 * R(x))")


def test_simplify_monomial_returns_none_for_zero():
    monomial = Monomial(1, (Compare(Const(1), "=", Const(2)),))
    assert simplify_monomial(monomial) is None
    assert simplify_monomial(Monomial(0, ())) is None


# ---------------------------------------------------------------------------
# safety-driven reordering
# ---------------------------------------------------------------------------


def test_order_for_safety_moves_producers_first():
    factors = (Compare(Var("x"), "<", Const(3)), Rel("R", ("x",)))
    ordered = order_for_safety(factors)
    assert isinstance(ordered[0], Rel)


def test_order_for_safety_converts_blocking_equalities():
    factors = (Compare(Var("k"), "=", Var("x")), Rel("R", ("x",)))
    ordered = order_for_safety(factors)
    assert isinstance(ordered[0], Rel)
    assert isinstance(ordered[1], Assign)


def test_order_for_safety_leaves_hopeless_factors_at_the_end():
    factors = (Compare(Var("a"), "<", Var("b")),)
    assert order_for_safety(factors) == factors


def test_make_safe_produces_evaluable_expression(customers_db):
    expr = parse("(n = n2) * C(c, n) * C(c2, n2)")
    safe = make_safe(expr)
    direct = evaluate(parse("C(c, n) * C(c2, n2) * (n = n2)"), customers_db)
    assert evaluate(safe, customers_db) == direct


# ---------------------------------------------------------------------------
# semantics preservation
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(simple_unary_queries(), unary_update_streams())
def test_simplify_preserves_semantics(query, updates):
    db = Database({"R": ("A",)})
    db.apply_all(updates[:10])
    assert evaluate(query, db) == evaluate(simplify(query), db)


@settings(max_examples=30, deadline=None)
@given(simple_unary_queries(), unary_update_streams())
def test_simplified_deltas_preserve_semantics(query, updates):
    """Simplifying a symbolic delta and binding the update values afterwards is sound."""
    db = Database({"R": ("A",)})
    db.apply_all(updates[:8])
    event = UpdateEvent.symbolic(1, "R", 1)
    raw = delta(query, event)
    tidy = simplify(raw, bound_vars=event.argument_names, needed_vars=set(event.argument_names))
    bindings = Record.from_values(event.argument_names, (1,))
    assert evaluate(raw, db, bindings) == evaluate(tidy, db, bindings)


def test_repeated_assignment_to_eliminated_variable_keeps_equality():
    """Regression: ``(x := u0) * (x := u1)`` with ``x`` eliminated must keep the
    ``u0 = u1`` filter — it is the delta of a repeated-column atom ``R(x, x)``."""
    from repro.core.ast import Assign, Compare, Mul, Var
    from repro.core.normalization import Monomial
    from repro.core.simplify import simplify_monomial

    monomial = Monomial(
        1, (Assign("x", Var("u0")), Assign("x", Var("u1")), Var("x"))
    )
    result = simplify_monomial(monomial, bound_vars=("u0", "u1"), needed_vars=("u0", "u1"))
    comparisons = [f for f in result.factors if isinstance(f, Compare)]
    assert comparisons and comparisons[0].op == "="


def test_repeated_column_atom_compiles_with_equality_guard():
    from repro.compiler.compile import compile_query
    from repro.core.parser import parse
    from repro.compiler.runtime import TriggerRuntime
    from repro.gmr.database import insert
    from repro.ivm.naive import NaiveReevaluation

    schema = {"R": ("A", "B")}
    query = parse("Sum(R(x, x) * x)")
    runtime = TriggerRuntime(compile_query(query, schema, name="q"))
    naive = NaiveReevaluation(query, schema)
    for update in [insert("R", 2, 2), insert("R", 0, 1), insert("R", 3, 3)]:
        runtime.apply(update)
        naive.apply(update)
    assert runtime.result() == naive.result() == 5
