"""Tests for variable and range-restriction (safety) analysis."""

import pytest

from repro.core.ast import Assign, Compare, Const, MapRef, Rel, Var
from repro.core.errors import UnsafeQueryError
from repro.core.parser import parse
from repro.core.variables import (
    all_variables,
    binding_analysis,
    check_safety,
    is_safe,
    needed_variables,
    output_variables,
)


def test_all_variables_collects_every_position():
    expr = parse("AggSum([g], R(x, y) * m[k] * (z := 3) * (w < 2))")
    assert all_variables(expr) == frozenset({"g", "x", "y", "k", "z", "w"})


def test_leaves():
    assert binding_analysis(Const(3)) == (frozenset(), frozenset())
    assert binding_analysis(Var("x")) == (frozenset({"x"}), frozenset())
    assert binding_analysis(Var("x"), bound={"x"}) == (frozenset(), frozenset())
    assert binding_analysis(Rel("R", ("a", "b"))) == (frozenset(), frozenset({"a", "b"}))
    assert binding_analysis(MapRef("m", ("k",))) == (frozenset(), frozenset({"k"}))


def test_assignment_and_condition():
    needed, produced = binding_analysis(Assign("x", Var("y")))
    assert needed == frozenset({"y"}) and produced == frozenset({"x"})
    needed, produced = binding_analysis(Compare(Var("x"), "<", Var("y")), bound={"x"})
    assert needed == frozenset({"y"}) and produced == frozenset()


def test_product_passes_bindings_left_to_right():
    safe = parse("R(x, y) * (x < y)")
    assert is_safe(safe)
    unsafe = parse("(x < y) * R(x, y)")
    assert not is_safe(unsafe)
    assert needed_variables(unsafe) == frozenset({"x", "y"})
    # Binding the condition's variables from outside makes the product safe again.
    assert is_safe(unsafe, bound={"x", "y"})


def test_addition_needs_union_and_produces_intersection():
    expr = parse("R(x, y) + S(x, z)")
    needed, produced = binding_analysis(expr)
    assert needed == frozenset()
    assert produced == frozenset({"x"})


def test_aggsum_group_vars_must_be_produced_or_bound():
    safe = parse("AggSum([x], R(x, y))")
    assert is_safe(safe)
    unsafe = parse("AggSum([g], R(x, y))")
    assert needed_variables(unsafe) == frozenset({"g"})
    assert is_safe(unsafe, bound={"g"})


def test_output_variables_of_products_and_aggregates():
    assert output_variables(parse("R(x, y) * (z := x)")) == frozenset({"x", "y", "z"})
    assert output_variables(parse("AggSum([x], R(x, y))")) == frozenset({"x"})


def test_paper_queries_are_safe():
    assert is_safe(parse("Sum(C(c, n) * C(c2, n2) * (n = n2))"))
    assert is_safe(parse("Sum(R(a, b) * S(c, d) * T(e, f) * (b = c) * (d = e) * a * f)"))


def test_variable_used_as_value_requires_binding():
    expr = parse("Sum(R(x) * y)")
    assert needed_variables(expr) == frozenset({"y"})
    assert is_safe(parse("Sum(R(x) * x)"))


def test_check_safety_raises_with_variable_names():
    with pytest.raises(UnsafeQueryError) as excinfo:
        check_safety(parse("Sum(R(x) * y * z)"))
    message = str(excinfo.value)
    assert "y" in message and "z" in message


def test_check_safety_accepts_bound_variables():
    check_safety(parse("Sum(R(x) * y)"), bound={"y"})


def test_unknown_node_type_raises():
    class Strange:
        pass

    with pytest.raises(TypeError):
        binding_analysis(Strange())  # type: ignore[arg-type]
