"""Smoke tests: every example script runs end to end and prints sensible output."""

import io
import runpy
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXPECTED_SNIPPETS = {
    "quickstart.py": ["Q on {c, c, d}", "recursive (paper)", "Compiled view hierarchy"],
    "polynomial_memoization.py": ["Figure 1", "Random walk", "additions performed"],
    "social_analytics.py": [
        "Second delta",
        "customers remain",
        "Per-update time",
        "Top-3 posts per community",
        "the panel re-ranks",
    ],
    "sales_dashboard.py": ["Revenue per nation", "Busiest customers", "compiled revenue program"],
    "streaming_ingest.py": [
        "revenue per region",
        "Dead-letter quarantine",
        "pipeline still live",
        "next flush applied cleanly",
    ],
}


@pytest.mark.parametrize("script_name", sorted(EXPECTED_SNIPPETS))
def test_example_runs_and_prints(script_name):
    script_path = EXAMPLES_DIR / script_name
    assert script_path.exists(), script_path
    captured = io.StringIO()
    with redirect_stdout(captured):
        runpy.run_path(str(script_path), run_name="__main__")
    output = captured.getvalue()
    for snippet in EXPECTED_SNIPPETS[script_name]:
        assert snippet in output, f"{script_name} did not print {snippet!r}"


def test_every_example_has_a_module_docstring():
    for script in EXAMPLES_DIR.glob("*.py"):
        first_line = script.read_text().lstrip().splitlines()[0]
        assert first_line.startswith('"""'), script
