"""Tests for the classical multiset-relational-algebra bridge (Section 5)."""

import pytest
from hypothesis import given

from repro.gmr.algebra_bridge import (
    aggregate_sum,
    cross_product,
    group_by_sum,
    multiset_union,
    natural_join,
    projection,
    renaming,
    selection,
)
from repro.gmr.records import Record
from repro.gmr.relation import GMR
from tests.conftest import gmrs


@pytest.fixture
def employees():
    return GMR.from_tuples(("name", "dept"), [("ann", 1), ("bob", 1), ("cat", 2), ("bob", 1)])


@pytest.fixture
def departments():
    return GMR.from_tuples(("dept", "city"), [(1, "paris"), (2, "rome")])


def test_selection(employees):
    selected = selection(employees, lambda record: record["dept"] == 1)
    assert selected.total() == 3
    assert Record.of(name="cat", dept=2) not in selected


def test_projection_multiset_semantics(employees):
    projected = projection(employees, ["dept"])
    assert projected[Record.of(dept=1)] == 3
    assert projected[Record.of(dept=2)] == 1


def test_renaming(employees):
    renamed = renaming(employees, {"dept": "department"})
    assert Record.of(name="ann", department=1) in renamed


def test_natural_join(employees, departments):
    joined = natural_join(employees, departments)
    assert joined[Record.of(name="bob", dept=1, city="paris")] == 2
    assert joined[Record.of(name="cat", dept=2, city="rome")] == 1
    assert joined.total() == employees.total()


def test_multiset_union(employees):
    doubled = multiset_union(employees, employees)
    assert doubled.total() == 2 * employees.total()


def test_cross_product_requires_disjoint_schemas(employees, departments):
    colors = GMR.from_tuples(("color",), [("red",), ("blue",)])
    product = cross_product(departments, colors)
    assert product.total() == departments.total() * colors.total()
    with pytest.raises(ValueError):
        cross_product(employees, departments)  # shares the dept column
    with pytest.raises(ValueError):
        cross_product(employees, GMR({Record.of(a=1): 1, Record.of(b=2): 1}))


def test_aggregate_sum_count_and_weighted(employees):
    assert aggregate_sum(employees) == 4
    weighted = aggregate_sum(employees, lambda record: record["dept"])
    assert weighted == 1 + 1 + 1 + 2


def test_group_by_sum(employees):
    groups = group_by_sum(employees, ["dept"])
    assert groups[Record.of(dept=1)] == 3
    assert groups[Record.of(dept=2)] == 1
    weighted = group_by_sum(employees, ["dept"], value=lambda record: 10)
    assert weighted[Record.of(dept=1)] == 30


def test_group_by_sum_drops_zero_groups():
    relation = GMR({Record.of(A=1, B=1): 1, Record.of(A=1, B=2): -1})
    groups = group_by_sum(relation, ["A"])
    assert groups == {}


@given(gmrs(), gmrs())
def test_join_and_union_are_the_ring_operations(left, right):
    assert natural_join(left, right) == left * right
    assert multiset_union(left, right) == left + right
