"""Tests for databases, schemas and single-tuple updates (Section 6's ±R(t))."""

import pytest

from repro.gmr.database import DELETE, INSERT, Database, Update, delete, insert
from repro.gmr.records import Record
from repro.gmr.relation import GMR


def test_update_constructors_and_signs():
    up = insert("R", 1, 2)
    down = delete("R", 1, 2)
    assert up.sign == INSERT and up.is_insert and not up.is_delete
    assert down.sign == DELETE and down.is_delete
    assert up.inverted() == down
    assert repr(up) == "+R(1, 2)"
    assert repr(down) == "-R(1, 2)"


def test_update_rejects_bad_sign():
    with pytest.raises(ValueError):
        Update(2, "R", (1,))


def test_declare_and_columns():
    db = Database()
    db.declare("R", ("A", "B"))
    assert db.columns("R") == ("A", "B")
    assert db.arity("R") == 2
    assert db.has_relation("R")
    assert list(db.relation_names()) == ["R"]
    assert db.schema == {"R": ("A", "B")}
    # Re-declaring identically is fine, changing the columns is not.
    db.declare("R", ("A", "B"))
    with pytest.raises(ValueError):
        db.declare("R", ("A", "C"))
    with pytest.raises(ValueError):
        db.declare("S", ("A", "A"))


def test_unknown_relation_errors():
    db = Database({"R": ("A",)})
    with pytest.raises(KeyError):
        db.columns("S")
    with pytest.raises(KeyError):
        db.relation("S")


def test_load_and_size():
    db = Database({"R": ("A", "B")})
    db.load("R", [(1, 2), (1, 2), (3, 4)])
    assert db.size("R") == 2
    assert db.size() == 2
    assert db["R"][Record.of(A=1, B=2)] == 2
    assert not db.is_empty()
    assert db.active_domain() == frozenset({1, 2, 3, 4})


def test_set_relation_checks_ring():
    from repro.algebra.semirings import RATIONAL_FIELD

    db = Database({"R": ("A",)})
    db.set_relation("R", GMR.from_tuples(("A",), [(1,)]))
    assert db.size("R") == 1
    with pytest.raises(ValueError):
        db.set_relation("R", GMR.zero(ring=RATIONAL_FIELD))


def test_apply_insert_and_delete():
    db = Database({"R": ("A",)})
    db.apply(insert("R", "c"))
    db.apply(insert("R", "c"))
    db.apply(insert("R", "d"))
    assert db["R"][Record.of(A="c")] == 2
    db.apply(delete("R", "c"))
    assert db["R"][Record.of(A="c")] == 1
    db.apply(delete("R", "d"))
    assert Record.of(A="d") not in db["R"]


def test_deleting_a_missing_tuple_goes_negative():
    """Deleting "too much" yields negative multiplicities (Remark 5.1), not an error."""
    db = Database({"R": ("A",)})
    db.apply(delete("R", "x"))
    assert db["R"][Record.of(A="x")] == -1


def test_delta_gmr_and_record_for():
    db = Database({"R": ("A", "B")})
    update = insert("R", 1, 2)
    assert db.record_for(update) == Record.of(A=1, B=2)
    assert db.delta_gmr(update)[Record.of(A=1, B=2)] == 1
    assert db.delta_gmr(update.inverted())[Record.of(A=1, B=2)] == -1
    with pytest.raises(ValueError):
        db.record_for(insert("R", 1))


def test_updated_returns_a_copy():
    db = Database({"R": ("A",)})
    db.load("R", [(1,)])
    changed = db.updated(insert("R", 2))
    assert changed.size("R") == 2
    assert db.size("R") == 1
    assert changed != db


def test_copy_is_independent():
    db = Database({"R": ("A",)})
    clone = db.copy()
    clone.apply(insert("R", 1))
    assert db.is_empty()
    assert not clone.is_empty()
    assert db == Database({"R": ("A",)})


def test_apply_all_and_iteration():
    db = Database({"R": ("A",), "S": ("B",)})
    db.apply_all([insert("R", 1), insert("S", 2), delete("R", 1)])
    contents = dict(db)
    assert contents["R"].is_zero()
    assert contents["S"].total() == 1
    assert "rows" in repr(db)
