"""Tests for parametrized gmrs =>A[T] (Section 3.2, Proposition 3.4, Example 3.5)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gmr.parametrized import PGMR
from repro.gmr.records import EMPTY_RECORD, Record
from repro.gmr.relation import GMR
from tests.conftest import gmrs

PROBES = [
    EMPTY_RECORD,
    Record.of(A=1),
    Record.of(A=2),
    Record.of(A=1, B=2),
    Record.of(B=3),
]


def constant_pgmrs():
    return gmrs().map(PGMR.lift)


def binding_dependent_pgmrs():
    """PGMRs whose output depends on the binding's A column."""

    def build(pair):
        base, bonus = pair

        def function(binding):
            if "A" in binding and binding["A"] == 1:
                return base + GMR.scalar(bonus)
            return base

        return PGMR(function)

    return st.tuples(gmrs(), st.integers(min_value=-3, max_value=3)).map(build)


@settings(max_examples=25, deadline=None)
@given(binding_dependent_pgmrs(), binding_dependent_pgmrs(), binding_dependent_pgmrs())
def test_pgmr_ring_laws_on_probes(f, g, h):
    """Proposition 3.4 (sampled): associativity, commutativity of +, distributivity, inverse."""
    assert (f + g).equals_on(g + f, PROBES)
    assert ((f + g) + h).equals_on(f + (g + h), PROBES)
    assert ((f * g) * h).equals_on(f * (g * h), PROBES)
    assert (f * (g + h)).equals_on((f * g) + (f * h), PROBES)
    assert ((f + g) * h).equals_on((f * h) + (g * h), PROBES)
    assert (f - f).equals_on(PGMR.zero(), PROBES)


@settings(max_examples=25, deadline=None)
@given(gmrs())
def test_pgmr_identities(value):
    """Identity laws hold for well-formed pgmrs (the paper's pgmr condition)."""
    f = PGMR.from_gmr(value)
    assert (f * PGMR.one()).equals_on(f, PROBES)
    assert (PGMR.one() * f).equals_on(f, PROBES)
    assert (f + PGMR.zero()).equals_on(f, PROBES)
    assert (PGMR.zero() * f).equals_on(PGMR.zero(), PROBES)


@settings(max_examples=25, deadline=None)
@given(binding_dependent_pgmrs())
def test_pgmr_identities_at_the_empty_binding(f):
    """At the nullary binding the identity laws hold for arbitrary functions too."""
    probe = [EMPTY_RECORD]
    assert (f * PGMR.one()).equals_on(f, probe)
    assert (PGMR.one() * f).equals_on(f, probe)


@settings(max_examples=25, deadline=None)
@given(gmrs(), gmrs())
def test_embedding_is_a_homomorphism(alpha, beta):
    """The well-formed embedding of A[T] preserves + and * (cf. Prop. 2.8)."""
    lifted_sum = PGMR.from_gmr(alpha) + PGMR.from_gmr(beta)
    lifted_product = PGMR.from_gmr(alpha) * PGMR.from_gmr(beta)
    assert lifted_sum.equals_on(PGMR.from_gmr(alpha + beta), PROBES)
    assert lifted_product.equals_on(PGMR.from_gmr(alpha * beta), PROBES)


def test_example_3_5_selection_via_condition():
    """Multiplying by a condition pgmr selects tuples satisfying it (Example 3.5)."""
    R = GMR(
        {
            Record.of(A=1, B=5): 2,
            Record.of(A=7, B=3): 4,
            Record.of(A=2, B=2): 1,
        }
    )
    f = PGMR.lift(R)
    condition = PGMR.condition(
        lambda binding: "A" in binding and "B" in binding and binding["A"] < binding["B"]
    )
    selected = (f * condition)(EMPTY_RECORD)
    assert selected[Record.of(A=1, B=5)] == 2
    assert Record.of(A=7, B=3) not in selected
    assert Record.of(A=2, B=2) not in selected


def test_sideways_binding_is_passed_to_the_right_factor():
    left = PGMR.lift(GMR({Record.of(A=1): 1, Record.of(A=2): 1}))
    # The right factor only produces output when the binding it receives has A = 2.
    right = PGMR.condition(lambda binding: binding.get("A") == 2)
    product = (left * right)(EMPTY_RECORD)
    assert Record.of(A=1) not in product
    assert product[Record.of(A=2)] == 1


def test_aggregate_collapses_to_total():
    relation = GMR({Record.of(A=1): 2, Record.of(A=2): 3})
    aggregated = PGMR.lift(relation).aggregate()(EMPTY_RECORD)
    assert aggregated[EMPTY_RECORD] == 5
    assert len(aggregated) == 1


def test_incompatible_rings_rejected():
    import pytest
    from repro.algebra.semirings import RATIONAL_FIELD

    over_q = PGMR.zero(ring=RATIONAL_FIELD)
    with pytest.raises(ValueError):
        _ = over_q + PGMR.zero()


def test_repr_mentions_ring():
    assert "Z" in repr(PGMR.zero())
