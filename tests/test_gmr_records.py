"""Tests for schema-polymorphic records and the singleton join (Section 3.1)."""

import pytest
from hypothesis import given

from repro.gmr.records import EMPTY_RECORD, Record
from tests.conftest import records


def test_construction_from_mapping_and_kwargs():
    assert Record({"A": 1, "B": 2}) == Record.of(A=1, B=2)
    assert Record(Record.of(A=1)) == Record.of(A=1)
    assert Record([("A", 1)]) == Record.of(A=1)


def test_column_names_must_be_strings():
    with pytest.raises(TypeError):
        Record({1: "x"})


def test_mapping_protocol():
    record = Record.of(A=1, B=2)
    assert record["A"] == 1
    assert "B" in record
    assert "C" not in record
    assert len(record) == 2
    assert set(record) == {"A", "B"}
    assert record.columns == frozenset({"A", "B"})
    assert record.as_dict() == {"A": 1, "B": 2}


def test_equality_with_plain_mappings_and_hash():
    assert Record.of(A=1) == {"A": 1}
    assert hash(Record.of(A=1, B=2)) == hash(Record.of(B=2, A=1))


def test_empty_record():
    assert EMPTY_RECORD.is_empty()
    assert repr(EMPTY_RECORD) == "⟨⟩"
    assert not Record.of(A=1).is_empty()


# ---------------------------------------------------------------------------
# Natural join (the Sng∅ monoid operation)
# ---------------------------------------------------------------------------


def test_join_of_consistent_records_merges():
    assert Record.of(A=1).join(Record.of(B=2)) == Record.of(A=1, B=2)
    assert Record.of(A=1, B=2).join(Record.of(B=2, C=3)) == Record.of(A=1, B=2, C=3)


def test_join_of_conflicting_records_is_none():
    assert Record.of(A=1).join(Record.of(A=2)) is None
    assert not Record.of(A=1).consistent_with(Record.of(A=2))


@given(records())
def test_empty_record_is_join_identity(record):
    assert record.join(EMPTY_RECORD) == record
    assert EMPTY_RECORD.join(record) == record


@given(records(), records())
def test_join_is_commutative(left, right):
    assert left.join(right) == right.join(left)


@given(records(), records(), records())
def test_join_is_associative(a, b, c):
    def join3(x, y, z):
        xy = x.join(y)
        return None if xy is None else xy.join(z)

    def join3_right(x, y, z):
        yz = y.join(z)
        return None if yz is None else x.join(yz)

    assert join3(a, b, c) == join3_right(a, b, c)


@given(records())
def test_join_is_idempotent(record):
    assert record.join(record) == record


# ---------------------------------------------------------------------------
# Record surgery
# ---------------------------------------------------------------------------


def test_restrict_and_drop():
    record = Record.of(A=1, B=2, C=3)
    assert record.restrict(["A", "C", "Z"]) == Record.of(A=1, C=3)
    assert record.drop(["B"]) == Record.of(A=1, C=3)


def test_rename():
    record = Record.of(A=1, B=2)
    assert record.rename({"A": "X"}) == Record.of(X=1, B=2)
    # Collapsing two columns with equal values is allowed ...
    assert Record.of(A=1, B=1).rename({"A": "B"}) == Record.of(B=1)
    # ... but conflicting values are an error.
    with pytest.raises(ValueError):
        Record.of(A=1, B=2).rename({"A": "B"})


def test_extend():
    assert Record.of(A=1).extend(B=2) == Record.of(A=1, B=2)
    assert Record.of(A=1).extend(A=1) == Record.of(A=1)
    with pytest.raises(ValueError):
        Record.of(A=1).extend(A=2)


def test_values_for_preserves_order():
    record = Record.of(A=1, B=2, C=3)
    assert record.values_for(["C", "A"]) == (3, 1)
    with pytest.raises(KeyError):
        record.values_for(["Z"])


def test_from_values():
    assert Record.from_values(["A", "B"], [1, 2]) == Record.of(A=1, B=2)
    # Repeated columns must agree.
    assert Record.from_values(["A", "A"], [1, 1]) == Record.of(A=1)
    with pytest.raises(ValueError):
        Record.from_values(["A", "A"], [1, 2])
    with pytest.raises(ValueError):
        Record.from_values(["A"], [1, 2])
