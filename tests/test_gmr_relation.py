"""Tests for generalized multiset relations A[T] (Definition 3.1, Example 3.2)."""

import pytest
from fractions import Fraction
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.properties import check_module_laws, check_semiring_laws
from repro.algebra.semirings import BOOLEAN_SEMIRING, RATIONAL_FIELD
from repro.gmr.records import EMPTY_RECORD, Record
from repro.gmr.relation import GMR
from tests.conftest import gmrs


# ---------------------------------------------------------------------------
# The ring axioms (Proposition 3.3)
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(st.lists(gmrs(), min_size=1, max_size=3))
def test_gmr_ring_axioms(samples):
    check_semiring_laws(
        lambda a, b: a + b,
        lambda a, b: a * b,
        GMR.zero(),
        GMR.one(),
        samples,
        neg=lambda a: -a,
        commutative_mul=True,
    )


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.integers(min_value=-3, max_value=3), min_size=1, max_size=3),
    st.lists(gmrs(), min_size=1, max_size=3),
)
def test_gmr_is_a_z_module(scalars, vectors):
    """Proposition 2.15 applied to A[T]: the scalar action satisfies the module laws."""
    check_module_laws(
        lambda a, b: a + b,
        lambda a, b: a * b,
        scalars,
        lambda x, y: x + y,
        lambda scalar, relation: relation.scale(scalar),
        vectors,
        scalar_one=1,
    )


@given(gmrs(), gmrs())
def test_addition_is_pointwise(left, right):
    total = left + right
    for record in set(left.support()) | set(right.support()):
        assert total[record] == left[record] + right[record]


@given(gmrs())
def test_additive_inverse_models_deletion(relation):
    assert (relation + (-relation)).is_zero()
    assert (relation - relation).is_zero()


@given(gmrs(), gmrs())
def test_multiplication_is_join_convolution(left, right):
    product = left * right
    expected = {}
    for left_record, left_mult in left.items():
        for right_record, right_mult in right.items():
            joined = left_record.join(right_record)
            if joined is not None:
                expected[joined] = expected.get(joined, 0) + left_mult * right_mult
    expected = {record: value for record, value in expected.items() if value != 0}
    assert dict(product.items()) == expected


# ---------------------------------------------------------------------------
# Example 3.2 of the paper
# ---------------------------------------------------------------------------


def test_example_3_2():
    r1, r2, s, t1, t2 = 2, 3, 5, 7, 11
    R = GMR({Record.of(A="a1"): r1, Record.of(A="a2", B="b"): r2})
    S = GMR({Record.of(C="c"): s})
    T = GMR({Record.of(B="b", C="c"): t1, Record.of(C="c"): 0, Record.of(B="b", C="c2"): 0})
    T = GMR({Record.of(C="c"): t1, Record.of(B="b", C="c"): t2})

    union = S + T
    assert union[Record.of(C="c")] == s + t1
    assert union[Record.of(B="b", C="c")] == t2

    product = R * union
    assert product[Record.of(A="a1", C="c")] == r1 * (s + t1)
    assert product[Record.of(A="a1", B="b", C="c")] == r1 * t2
    assert product[Record.of(A="a2", B="b", C="c")] == r2 * (s + t1) + r2 * t2
    assert len(product) == 3


# ---------------------------------------------------------------------------
# Constructors and inspection
# ---------------------------------------------------------------------------


def test_constructors():
    assert GMR.zero().is_zero()
    assert GMR.one()[EMPTY_RECORD] == 1
    assert GMR.scalar(5)[EMPTY_RECORD] == 5
    assert GMR.singleton({"A": 1}, 3)[Record.of(A=1)] == 3
    from_rows = GMR.from_rows([{"A": 1}, {"A": 1}, {"A": 2}])
    assert from_rows[Record.of(A=1)] == 2
    from_tuples = GMR.from_tuples(("A", "B"), [(1, 2), (1, 2), (3, 4)])
    assert from_tuples[Record.of(A=1, B=2)] == 2


def test_zero_multiplicities_are_normalized_away():
    relation = GMR({Record.of(A=1): 0, Record.of(A=2): 5})
    assert Record.of(A=1) not in relation
    assert len(relation) == 1
    assert bool(relation)


def test_duplicate_rows_in_constructor_add_up():
    relation = GMR.from_rows([{"A": 1}], multiplicity=2) + GMR.from_rows([{"A": 1}], multiplicity=-2)
    assert relation.is_zero()


def test_getitem_and_get():
    relation = GMR({Record.of(A=1): 4})
    assert relation[{"A": 1}] == 4
    assert relation[{"A": 9}] == 0
    assert relation.get({"A": 9}, default=-1) == -1


def test_schema_and_multiset_checks():
    uniform = GMR.from_tuples(("A",), [(1,), (2,)])
    assert uniform.schema() == frozenset({"A"})
    assert uniform.is_multiset_relation()
    mixed = GMR({Record.of(A=1): 1, Record.of(B=2): 1})
    assert mixed.schema() is None
    assert not mixed.is_multiset_relation()
    negative = GMR({Record.of(A=1): -1})
    assert not negative.is_multiset_relation()
    assert GMR.zero().schema() == frozenset()


def test_total_and_active_domain():
    relation = GMR.from_tuples(("A", "B"), [(1, 5), (2, 5), (2, 5)])
    assert relation.total() == 3
    assert relation.active_domain() == frozenset({1, 2, 5})


def test_projection_sums_multiplicities():
    relation = GMR.from_tuples(("A", "B"), [(1, 5), (1, 6), (2, 5)])
    projected = relation.project(["A"])
    assert projected[Record.of(A=1)] == 2
    assert projected[Record.of(A=2)] == 1


def test_rename_and_filter():
    relation = GMR.from_tuples(("A", "B"), [(1, 5), (2, 6)])
    renamed = relation.rename({"A": "X"})
    assert renamed[Record.of(X=1, B=5)] == 1
    filtered = relation.filter(lambda record: record["B"] > 5)
    assert len(filtered) == 1


def test_scalar_multiplication_sugar():
    relation = GMR.from_tuples(("A",), [(1,), (2,)])
    assert (3 * relation)[Record.of(A=1)] == 3
    assert (relation * 0).is_zero()
    assert relation.scale(-1) == -relation


def test_mixed_coefficient_structures_are_rejected():
    over_q = GMR({Record.of(A=1): Fraction(1, 2)}, ring=RATIONAL_FIELD)
    over_z = GMR({Record.of(A=1): 1})
    with pytest.raises(ValueError):
        over_q + over_z
    with pytest.raises(ValueError):
        over_q * over_z


def test_boolean_gmr_behaves_like_set_semantics():
    over_b = GMR({Record.of(A=1): True, Record.of(A=2): True}, ring=BOOLEAN_SEMIRING)
    joined = over_b * GMR({Record.of(B=5): True}, ring=BOOLEAN_SEMIRING)
    assert joined[Record.of(A=1, B=5)] is True
    assert (over_b + over_b) == over_b


def test_equality_and_hash():
    left = GMR.from_tuples(("A",), [(1,), (2,)])
    right = GMR.from_tuples(("A",), [(2,), (1,)])
    assert left == right
    assert hash(left) == hash(right)


def test_repr():
    assert repr(GMR.zero()) == "GMR{}"
    assert "⟨A=1⟩" in repr(GMR.singleton({"A": 1}))
