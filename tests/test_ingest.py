"""Tests of the streaming ingestion subsystem (src/repro/ingest/).

Covers: online coalescing in the queue (duplicates, cancellation, compact
count-carrying updates), watermark flushing (size and latency, plus the
deterministic inline ``flush()``), backpressure (block / error / nowait /
timeout / close-while-blocked, and the merge-at-high-water exemption),
dead-letter quarantine with transactional rollback, cross-batch CDC windows
(payload equivalence at every window size), stats accounting, the
``Session.ingest`` entry point, and a randomized multi-threaded equivalence
property: concurrent producers through the pipeline leave the views in
exactly the state of applying the stream serially.
"""

import random
import threading
import time

import pytest

from repro.gmr.database import (
    Update,
    accumulate_update,
    delete,
    insert,
    updates_from_net,
)
from repro.ingest import (
    BackpressureError,
    BackpressurePolicy,
    IngestClosedError,
    IngestPipeline,
    IngestQueue,
)
from repro.session import Session
from repro.workloads.streams import producer_streams

SCHEMA = {"R": ("a", "b")}


def make_session(schema=SCHEMA, **kwargs):
    session = Session(schema, **kwargs)
    session.view("total", "AggSum([], R(a, b) * b)")
    session.view("by_a", "AggSum([a], R(a, b) * b)")
    return session


def manual_pipeline(session, **kwargs):
    """A pipeline that only flushes when the test says so (no timer, huge
    size watermark) — the deterministic configuration."""
    kwargs.setdefault("max_pending", 1_000_000)
    kwargs.setdefault("max_staleness_ms", None)
    return session.ingest(**kwargs)


def wait_until(predicate, timeout=5.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ---------------------------------------------------------------------------
# Coalescing primitives
# ---------------------------------------------------------------------------


def test_accumulate_update_nets_signed_counts():
    net = {}
    accumulate_update(net, insert("R", 1))
    accumulate_update(net, Update(1, "R", (1,), count=4))
    accumulate_update(net, delete("R", 2))
    assert net == {("R", (1,)): 5, ("R", (2,)): -1}
    # Hitting net zero removes the key entirely — never a count=0 entry.
    accumulate_update(net, Update(-1, "R", (1,), count=5))
    assert ("R", (1,)) not in net
    compact = updates_from_net(net)
    assert compact == [delete("R", 2)]
    assert all(update.count >= 1 for update in compact)


def test_queue_coalesces_online():
    queue = IngestQueue()
    for _ in range(100):
        queue.submit(insert("R", 1, 10))
    assert queue.pending_keys == 1
    queue.submit(delete("R", 1, 10))
    assert queue.pending_keys == 1
    queue.submit(insert("R", 2, 5))
    queue.submit(delete("R", 2, 5))  # annihilates in place
    assert queue.pending_keys == 1
    [update] = queue.drain()
    assert update == Update(1, "R", (1, 10), count=99)
    assert queue.pending_keys == 0
    assert queue.drain() == []


def test_queue_submit_many_matches_one_at_a_time():
    updates = [
        insert("R", 1, 1),
        insert("R", 1, 1),
        delete("R", 2, 2),
        Update(1, "R", (3, 3), count=7),
        delete("R", 1, 1),
        delete("R", 1, 1),  # key (1,1) nets to zero
    ]
    one_at_a_time = IngestQueue()
    for update in updates:
        one_at_a_time.submit(update)
    bulk = IngestQueue()
    bulk.submit_many(updates)
    assert sorted(map(repr, bulk.drain())) == sorted(map(repr, one_at_a_time.drain()))
    assert bulk.stats.submitted_updates == one_at_a_time.stats.submitted_updates == 12
    assert bulk.stats.coalesced_updates == one_at_a_time.stats.coalesced_updates
    assert bulk.stats.cancelled_keys == one_at_a_time.stats.cancelled_keys == 1


def test_queue_staleness_clock():
    queue = IngestQueue()
    assert queue.oldest_age_s() == 0.0
    queue.submit(insert("R", 1, 1))
    time.sleep(0.02)
    assert queue.oldest_age_s() >= 0.015
    # Cancelling the only pending key resets the clock.
    queue.submit(delete("R", 1, 1))
    assert queue.oldest_age_s() == 0.0


# ---------------------------------------------------------------------------
# Backpressure
# ---------------------------------------------------------------------------


def test_backpressure_error_mode_and_nowait():
    queue = IngestQueue(backpressure=BackpressurePolicy(high_water=2, mode="error"))
    queue.submit(insert("R", 1, 1))
    queue.submit(insert("R", 2, 2))
    with pytest.raises(BackpressureError):
        queue.submit(insert("R", 3, 3))
    blocking = IngestQueue(backpressure=BackpressurePolicy(high_water=2, mode="block"))
    blocking.submit(insert("R", 1, 1))
    blocking.submit(insert("R", 2, 2))
    with pytest.raises(BackpressureError):
        blocking.submit(insert("R", 3, 3), nowait=True)


def test_backpressure_allows_merging_into_pending_keys_at_high_water():
    queue = IngestQueue(backpressure=BackpressurePolicy(high_water=2, mode="error"))
    queue.submit(insert("R", 1, 1))
    queue.submit(insert("R", 2, 2))
    # Same key: merges without growing the queue, so it must pass.
    queue.submit(insert("R", 1, 1))
    queue.submit(delete("R", 2, 2))  # cancels — frees a slot
    queue.submit(insert("R", 4, 4))
    assert queue.pending_keys == 2
    assert queue.stats.backpressure_stalls == 0


def test_backpressure_block_mode_unblocks_on_drain():
    queue = IngestQueue(backpressure=BackpressurePolicy(high_water=2, mode="block"))
    queue.submit(insert("R", 1, 1))
    queue.submit(insert("R", 2, 2))
    unblocked = threading.Event()

    def producer():
        queue.submit(insert("R", 3, 3))
        unblocked.set()

    thread = threading.Thread(target=producer, daemon=True)
    thread.start()
    assert not unblocked.wait(0.1), "producer should be stalled at high water"
    assert queue.drain()  # wakes the producer
    assert unblocked.wait(2.0), "producer should proceed after the drain"
    thread.join(timeout=2.0)
    assert queue.pending_keys == 1
    assert queue.stats.backpressure_stalls == 1
    assert queue.stats.backpressure_wait_s > 0


def test_backpressure_block_mode_times_out():
    queue = IngestQueue(
        backpressure=BackpressurePolicy(high_water=1, mode="block", timeout_s=0.05)
    )
    queue.submit(insert("R", 1, 1))
    started = time.perf_counter()
    with pytest.raises(BackpressureError):
        queue.submit(insert("R", 2, 2))
    assert time.perf_counter() - started >= 0.04


def test_close_wakes_blocked_producer_with_closed_error():
    queue = IngestQueue(backpressure=BackpressurePolicy(high_water=1, mode="block"))
    queue.submit(insert("R", 1, 1))
    outcome = []

    def producer():
        try:
            queue.submit(insert("R", 2, 2))
            outcome.append("submitted")
        except IngestClosedError:
            outcome.append("closed")

    thread = threading.Thread(target=producer, daemon=True)
    thread.start()
    assert wait_until(lambda: queue.stats.backpressure_stalls == 0 and thread.is_alive())
    time.sleep(0.05)  # let the producer reach the wait
    queue.close()
    thread.join(timeout=2.0)
    assert outcome == ["closed"]
    with pytest.raises(IngestClosedError):
        queue.submit(insert("R", 9, 9))


def test_backpressure_policy_validation():
    with pytest.raises(ValueError):
        BackpressurePolicy(high_water=0)
    with pytest.raises(ValueError):
        BackpressurePolicy(high_water=10, mode="drop")
    with pytest.raises(ValueError):
        BackpressurePolicy(high_water=10, timeout_s=0.0)


# ---------------------------------------------------------------------------
# Watermark flushing
# ---------------------------------------------------------------------------


def test_manual_flush_applies_coalesced_state():
    session = make_session()
    with manual_pipeline(session) as pipe:
        assert isinstance(pipe, IngestPipeline)  # Session.ingest forwards here
        for _ in range(50):
            pipe.insert("R", 1, 10)
        pipe.insert("R", 2, 3)
        pipe.delete("R", 2, 3)
        assert session["total"].result() == 0  # nothing flushed yet
        flushed = pipe.flush()
        assert flushed == 1  # one surviving key
        assert session["total"].result() == 500
        assert session["by_a"].result_mapping() == {(1,): 500}
    assert session["total"].result() == 500


def test_size_watermark_triggers_background_flush():
    session = make_session()
    pipe = session.ingest(max_pending=4, max_staleness_ms=None)
    try:
        for a in range(4):
            pipe.insert("R", a, 1)
        assert wait_until(lambda: pipe.queue_depth == 0)
        assert session["total"].result() == 4
        assert pipe.stats.flushes >= 1
    finally:
        pipe.close()


def test_latency_watermark_triggers_background_flush():
    session = make_session()
    pipe = session.ingest(max_pending=1_000_000, max_staleness_ms=15.0)
    try:
        pipe.insert("R", 1, 1)
        assert wait_until(lambda: session["total"].result() == 1)
        # The flush happened because of staleness, not size.
        assert pipe.stats.flushes >= 1
        snapshot = pipe.stats_snapshot()
        assert snapshot["max_flush_staleness_ms"] >= 10.0
    finally:
        pipe.close()


def test_close_flushes_remaining_and_rejects_submits():
    session = make_session()
    pipe = manual_pipeline(session)
    pipe.insert("R", 1, 7)
    pipe.close(flush=True)
    assert session["total"].result() == 7
    with pytest.raises(IngestClosedError):
        pipe.insert("R", 2, 2)
    pipe.close()  # idempotent


def test_close_without_flush_drops_pending():
    session = make_session()
    pipe = manual_pipeline(session)
    pipe.insert("R", 1, 7)
    pipe.close(flush=False)
    assert session["total"].result() == 0


def test_context_manager_flushes_on_clean_exit_only():
    session = make_session()
    with session.ingest(max_pending=1_000_000, max_staleness_ms=None) as pipe:
        pipe.insert("R", 1, 5)
    assert session["total"].result() == 5
    session2 = make_session()
    with pytest.raises(RuntimeError, match="boom"):
        with session2.ingest(max_pending=1_000_000, max_staleness_ms=None) as pipe:
            pipe.insert("R", 1, 5)
            raise RuntimeError("boom")
    # The aborted context did not flush the half-produced state.
    assert session2["total"].result() == 0


# ---------------------------------------------------------------------------
# Dead-letter quarantine
# ---------------------------------------------------------------------------


def make_poisonable_session():
    session = Session({"W": ("k", "v")})
    session.view("w_sum", "AggSum([k], W(k, v) * v)")
    return session


def test_poisoned_flush_is_quarantined_and_pipeline_survives():
    session = make_poisonable_session()
    pipe = manual_pipeline(session)
    try:
        pipe.insert("W", "k1", 10)
        pipe.flush()
        assert session["w_sum"].result_mapping() == {("k1",): 10}
        # A non-numeric value poisons the numeric fold mid-batch.
        pipe.insert("W", "k2", "not-a-number")
        pipe.insert("W", "k3", 5)
        flushed = pipe.flush()
        assert flushed == 2  # the batch was handed over, then rolled back
        # Transactional rollback: the pre-flush state survived intact,
        # including the healthy k3 update that shared the poisoned flush.
        assert session["w_sum"].result_mapping() == {("k1",): 10}
        [dead] = pipe.dead_letters
        assert isinstance(dead.error, TypeError)
        assert len(dead.updates) == 2
        assert pipe.stats.quarantined_batches == 1
        assert pipe.stats.quarantined_updates == 2
        # The pipeline keeps serving subsequent flushes.
        pipe.insert("W", "k4", 4)
        pipe.flush()
        assert session["w_sum"].result_mapping() == {("k1",): 10, ("k4",): 4}
        assert pipe.stats.quarantined_batches == 1
    finally:
        pipe.close()


def test_quarantine_limit_keeps_most_recent():
    session = make_poisonable_session()
    pipe = manual_pipeline(session, quarantine_limit=2)
    try:
        for index in range(4):
            pipe.insert("W", f"k{index}", "poison")
            pipe.flush()
        assert pipe.stats.quarantined_batches == 4
        assert len(pipe.dead_letters) == 2
        kept = [dead.flush_index for dead in pipe.dead_letters]
        assert kept == [2, 3]
    finally:
        pipe.close()


def test_dead_letter_snapshot_round_trip():
    from repro.ingest import DeadLetterBatch, QuarantinedError

    session = make_poisonable_session()
    pipe = manual_pipeline(session)
    try:
        pipe.insert("W", "k1", "poison")
        pipe.insert("W", "k2", 7, count=3)
        pipe.flush()
        [dead] = pipe.dead_letters
        payload = dead.to_snapshot()
        # The payload is plain data in the session snapshot's update-row
        # format — JSON round-trippable for durable persistence.
        import json

        revived = DeadLetterBatch.from_snapshot(json.loads(json.dumps(payload)))
        assert [
            (u.sign, u.relation, u.values, u.count) for u in revived.updates
        ] == [(u.sign, u.relation, u.values, u.count) for u in dead.updates]
        assert isinstance(revived.error, QuarantinedError)
        assert "TypeError" in str(revived.error)
        assert revived.flush_index == dead.flush_index
    finally:
        pipe.close()


def test_retry_applies_a_healed_dead_letter_and_drops_it():
    session = make_poisonable_session()
    pipe = manual_pipeline(session)
    try:
        # Poison via a delete of a non-numeric value: retrying after the
        # offending tuple is compensated heals the batch.
        pipe.insert("W", "k1", "poison")
        pipe.insert("W", "k2", 5)
        pipe.flush()
        [dead] = pipe.dead_letters
        assert session["w_sum"].result_mapping() == {}
        # Heal: remove the poison from the batch by retrying a repaired copy.
        from repro.ingest import DeadLetterBatch

        healed = DeadLetterBatch(
            updates=tuple(u for u in dead.updates if u.values[1] != "poison"),
            error=dead.error,
            flush_index=dead.flush_index,
            timestamp=dead.timestamp,
        )
        applied = pipe.retry(healed)
        assert applied == 1
        assert session["w_sum"].result_mapping() == {("k2",): 5}
        # The original quarantine entry (equal except for updates) stays —
        # retry() only drops the exact entry it was handed.
        assert len(pipe.dead_letters) == 1
        assert pipe.retry(dead) == 0  # still poisoned: re-quarantined
        assert len(pipe.dead_letters) == 1
        assert session["w_sum"].result_mapping() == {("k2",): 5}
    finally:
        pipe.close()


def test_retry_after_snapshot_restore_round_trip():
    from repro.ingest import DeadLetterBatch
    from repro.session import Session as _Session

    session = make_poisonable_session()
    pipe = manual_pipeline(session)
    pipe.insert("W", "k1", 10)
    pipe.flush()
    pipe.insert("W", "k2", 4)
    pipe.insert("W", "k3", "poison")
    pipe.flush()
    [dead] = pipe.dead_letters
    dead_payload = dead.to_snapshot()
    state = session.snapshot()
    pipe.close()

    # A later process revives the session and the dead letter together.
    revived_session = _Session.restore(state)
    revived_pipe = manual_pipeline(revived_session)
    try:
        revived = DeadLetterBatch.from_snapshot(dead_payload)
        healed = DeadLetterBatch(
            updates=tuple(u for u in revived.updates if u.values[1] != "poison"),
            error=revived.error,
            flush_index=revived.flush_index,
            timestamp=revived.timestamp,
        )
        assert revived_pipe.retry(healed) == 1
        assert revived_session["w_sum"].result_mapping() == {("k1",): 10, ("k2",): 4}
    finally:
        revived_pipe.close()


def test_retry_on_closed_pipeline_raises():
    session = make_poisonable_session()
    pipe = manual_pipeline(session)
    pipe.insert("W", "k1", "poison")
    pipe.flush()
    [dead] = pipe.dead_letters
    pipe.close()
    with pytest.raises(IngestClosedError):
        pipe.retry(dead)


def test_quarantined_flush_produces_no_cdc():
    session = make_poisonable_session()
    payloads = []
    session["w_sum"].on_change(payloads.append)
    pipe = manual_pipeline(session)
    try:
        pipe.insert("W", "k1", "poison")
        pipe.flush()
        assert payloads == []
        pipe.insert("W", "k2", 2)
        pipe.flush()
        assert payloads == [{("k2",): 2}]
    finally:
        pipe.close()


# ---------------------------------------------------------------------------
# Cross-batch CDC windows
# ---------------------------------------------------------------------------


def test_window_emits_net_delta_every_n_flushes():
    session = make_session()
    pipe = manual_pipeline(session)
    try:
        payloads = []
        pipe.subscribe("by_a", payloads.append, every_flushes=3)
        pipe.insert("R", 1, 10)
        pipe.flush()
        pipe.insert("R", 1, 5)
        pipe.flush()
        assert payloads == []  # window still open after two flushes
        pipe.insert("R", 2, 7)
        pipe.flush()
        assert payloads == [{(1,): 15, (2,): 7}]
        # Changes cancelling *across* flushes inside a window never surface.
        pipe.insert("R", 3, 1)
        pipe.flush()
        pipe.delete("R", 3, 1)
        pipe.flush()
        pipe.insert("R", 1, 1)
        pipe.flush()
        assert payloads[-1] == {(1,): 1}
        assert pipe.stats.cdc_windows_emitted == 2
        assert pipe.stats.cdc_flushes_coalesced == 4
    finally:
        pipe.close()


def test_window_counts_only_flushes_that_touched_the_view():
    session = make_session()
    session.view("only_a5", "AggSum([], R(a, b) * (a = 5) * b)")
    pipe = manual_pipeline(session)
    try:
        payloads = []
        pipe.subscribe("only_a5", payloads.append, every_flushes=2)
        pipe.insert("R", 1, 1)  # does not change only_a5
        pipe.flush()
        pipe.insert("R", 5, 10)
        pipe.flush()
        assert payloads == []  # only one flush delivered a delta so far
        pipe.insert("R", 5, 10)
        pipe.flush()
        assert payloads == [{(): 20}]
    finally:
        pipe.close()


def test_window_time_bound_emits_without_more_flushes():
    session = make_session()
    pipe = session.ingest(max_pending=1_000_000, max_staleness_ms=None)
    try:
        payloads = []
        pipe.subscribe("total", payloads.append, every_flushes=100, every_ms=30.0)
        pipe.insert("R", 1, 2)
        pipe.flush()
        assert payloads == []
        assert wait_until(lambda: payloads == [{(): 2}])
    finally:
        pipe.close()


def test_close_force_emits_residual_window():
    session = make_session()
    pipe = manual_pipeline(session)
    payloads = []
    pipe.subscribe("total", payloads.append, every_flushes=10)
    pipe.insert("R", 1, 2)
    pipe.flush()
    assert payloads == []
    pipe.close(flush=True)
    assert payloads == [{(): 2}]


def test_subscription_cancel_stops_delivery():
    session = make_session()
    pipe = manual_pipeline(session)
    try:
        payloads = []
        subscription = pipe.subscribe("total", payloads.append)
        pipe.insert("R", 1, 2)
        pipe.flush()
        assert payloads == [{(): 2}]
        subscription.cancel()
        pipe.insert("R", 1, 2)
        pipe.flush()
        assert payloads == [{(): 2}]
        subscription.cancel()  # idempotent
    finally:
        pipe.close()


def test_window_payloads_equivalent_at_every_window_size():
    """The net view change over a run is invariant under the window size."""
    streams = producer_streams(SCHEMA, producers=1, length=400, seed=3, domain_size=6)
    [stream] = streams
    reference = None
    for window in (1, 2, 3, 5):
        session = make_session()
        ring = session.ring
        net = {}

        def absorb(payload, net=net, ring=ring):
            for key, value in payload.items():
                existing = net.get(key)
                net[key] = value if existing is None else ring.add(existing, value)

        pipe = manual_pipeline(session)
        pipe.subscribe("by_a", absorb, every_flushes=window)
        for batch in stream.batches(40):
            pipe.submit_many(batch)
            pipe.flush()
        pipe.close(flush=True)
        net = {key: value for key, value in net.items() if not ring.is_zero(value)}
        assert net == session["by_a"].result_mapping(), f"window={window}"
        if reference is None:
            reference = net
        else:
            assert net == reference, f"window={window}"


# ---------------------------------------------------------------------------
# Concurrency: producers vs flusher
# ---------------------------------------------------------------------------


def test_threaded_producers_match_serial_application():
    """Randomized property: any interleaving of producer threads through the
    pipeline ends in exactly the serially-applied state."""
    rng = random.Random(17)
    for round_index in range(3):
        producers = rng.choice([2, 3, 4])
        partitions = producer_streams(
            SCHEMA,
            producers=producers,
            length=rng.choice([300, 800]),
            seed=rng.randrange(10_000),
            domain_size=rng.choice([4, 12]),
        )
        serial = make_session()
        for partition in partitions:
            serial.apply_batch(list(partition))
        concurrent = make_session()
        pipe = concurrent.ingest(
            max_pending=rng.choice([8, 64]), max_staleness_ms=rng.choice([5.0, None])
        )
        threads = [
            threading.Thread(
                target=lambda p=partition: [
                    pipe.submit_many(batch) for batch in p.batches(rng.choice([7, 50]))
                ],
                daemon=True,
            )
            for partition in partitions
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        pipe.close(flush=True)
        assert not pipe.dead_letters
        assert concurrent.results() == serial.results(), f"round={round_index}"
        snapshot = pipe.stats_snapshot()
        assert snapshot["queue_depth"] == 0
        assert snapshot["submitted_updates"] == sum(len(p) for p in partitions)


def test_producers_blocked_by_backpressure_still_complete():
    session = make_session()
    pipe = session.ingest(
        max_pending=4,
        max_staleness_ms=5.0,
        backpressure=BackpressurePolicy(high_water=8, mode="block"),
    )
    partitions = producer_streams(SCHEMA, producers=3, length=600, seed=11, domain_size=64)
    threads = [
        threading.Thread(
            target=lambda p=partition: [pipe.submit(update) for update in p],
            daemon=True,
        )
        for partition in partitions
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30.0)
        assert not thread.is_alive()
    pipe.close(flush=True)
    serial = make_session()
    for partition in partitions:
        serial.apply_batch(list(partition))
    assert session.results() == serial.results()


# ---------------------------------------------------------------------------
# Stats accounting
# ---------------------------------------------------------------------------


def test_stats_snapshot_accounts_for_the_run():
    session = make_session()
    pipe = manual_pipeline(session)
    try:
        pipe.insert("R", 1, 1)
        pipe.insert("R", 1, 1)  # coalesces
        pipe.insert("R", 2, 2)
        pipe.delete("R", 2, 2)  # cancels
        pipe.flush()
        snapshot = pipe.stats_snapshot()
        assert snapshot["submitted_updates"] == 4
        assert snapshot["coalesced_updates"] == 2
        assert snapshot["cancelled_keys"] == 1
        assert snapshot["flushes"] == 1
        assert snapshot["flushed_updates"] == 1
        assert snapshot["flushed_tuples"] == 2
        assert snapshot["queue_depth"] == 0
        assert snapshot["flush_latency"]["max_ms"] >= snapshot["flush_latency"]["p50_ms"] > 0
    finally:
        pipe.close()


def test_pipeline_validates_on_submit_not_at_flush():
    session = make_session()
    pipe = manual_pipeline(session)
    try:
        with pytest.raises(Exception):
            pipe.insert("R", 1)  # wrong arity fails at the producer
        assert pipe.queue_depth == 0
        with pytest.raises(Exception):
            pipe.submit(insert("S", 1, 2))  # unknown relation
    finally:
        pipe.close()
