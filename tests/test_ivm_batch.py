"""Batched update application (`apply_batch`) and the classical group-var fix."""

import pytest

from repro.core.errors import UnboundVariableError
from repro.core.parser import parse
from repro.gmr.database import insert
from repro.ivm.base import results_agree
from repro.ivm.classical import ClassicalIVM
from repro.ivm.naive import NaiveReevaluation
from repro.ivm.recursive import RecursiveIVM
from repro.workloads.streams import StreamGenerator, UpdateStream

UNARY_SCHEMA = {"R": ("A",)}
RST_SCHEMA = {"R": ("A", "B"), "S": ("C", "D"), "T": ("E", "F")}

BATCH_QUERIES = [
    ("Sum(R(x) * R(y) * (x = y))", UNARY_SCHEMA),
    ("Sum(R(x) * x)", UNARY_SCHEMA),
    ("AggSum([a], R(a, b) * S(b, d) * d)", {"R": ("A", "B"), "S": ("C", "D")}),
    ("Sum(R(a, b) * S(c, d) * T(e, f) * (b = c) * (d = e) * a * f)", RST_SCHEMA),
]

ENGINE_FACTORIES = {
    "recursive-interpreted": lambda q, s: RecursiveIVM(q, s, backend="interpreted"),
    "recursive-generated": lambda q, s: RecursiveIVM(q, s, backend="generated"),
    "classical": ClassicalIVM,
    "naive": NaiveReevaluation,
}


@pytest.mark.parametrize("engine_name", list(ENGINE_FACTORIES))
@pytest.mark.parametrize("text,schema", BATCH_QUERIES, ids=[t for t, _ in BATCH_QUERIES])
def test_apply_batch_matches_sequential_application(engine_name, text, schema):
    query = parse(text)
    sequential = ENGINE_FACTORIES[engine_name](query, schema)
    batched = ENGINE_FACTORIES[engine_name](query, schema)
    stream = StreamGenerator(schema, seed=31, default_domain_size=4).generate(157)
    sequential.apply_all(stream)
    for batch in stream.batches(20):
        batched.apply_batch(batch)
    assert results_agree(sequential.result(), batched.result())
    assert batched.statistics.updates_processed == len(stream)


def test_apply_batch_batches_helper():
    stream = UpdateStream([insert("R", value) for value in range(7)])
    chunks = list(stream.batches(3))
    assert [len(chunk) for chunk in chunks] == [3, 3, 1]
    assert [update for chunk in chunks for update in chunk] == stream.updates
    with pytest.raises(ValueError):
        list(stream.batches(0))


def test_apply_batch_empty_and_unknown_relation():
    engine = RecursiveIVM(parse("Sum(R(x))"), {"R": ("A",), "S": ("B",)}, backend="generated")
    engine.apply_batch([])
    assert engine.result() == 0
    engine.apply_batch([insert("S", 1), insert("R", 2), insert("S", 3)])
    assert engine.result() == 1  # only the R insert counts


def test_runtime_apply_batch_counts_statistics():
    engine = RecursiveIVM(parse("Sum(R(x) * R(y) * (x = y))"), UNARY_SCHEMA, backend="interpreted")
    stream = StreamGenerator(UNARY_SCHEMA, seed=2, default_domain_size=3).generate(40)
    for batch in stream.batches(10):
        engine.apply_batch(batch)
    statistics = engine.runtime.statistics
    assert statistics.updates_processed == 40
    assert statistics.statements_executed > 0
    assert statistics.entries_updated > 0


def test_generated_apply_batch_counts_statistics():
    engine = RecursiveIVM(parse("Sum(R(x) * R(y) * (x = y))"), UNARY_SCHEMA, backend="generated")
    reference = RecursiveIVM(parse("Sum(R(x) * R(y) * (x = y))"), UNARY_SCHEMA, backend="interpreted")
    stream = StreamGenerator(UNARY_SCHEMA, seed=2, default_domain_size=3).generate(40)
    for batch in stream.batches(10):
        engine.apply_batch(batch)
        reference.apply_batch(batch)
    assert engine.runtime.statistics.statements_executed == (
        reference.runtime.statistics.statements_executed
    )
    assert engine.runtime.statistics.entries_updated == (
        reference.runtime.statistics.entries_updated
    )


# ---------------------------------------------------------------------------
# ClassicalIVM group-variable handling (regression: bare KeyError)
# ---------------------------------------------------------------------------


def test_classical_missing_group_variable_raises_typed_error():
    """A delta increment that binds no group variable must not crash with a
    bare ``KeyError``; it reports the unbound variable instead (and zero
    increments are skipped entirely)."""
    query = parse("AggSum([g], S(g, x))")
    engine = ClassicalIVM(query, {"S": ("G", "B")})
    # Simulate a delta query that produces a nonzero increment without
    # binding g (a record on the nullary tuple): the old code raised
    # KeyError('g') from the bindings lookup.
    engine._delta_queries[("S", 1)] = (parse("(0 < 1)"), ("__d_S_0", "__d_S_1"))
    with pytest.raises(UnboundVariableError):
        engine.apply(insert("S", 1, 2))


def test_classical_zero_increments_are_skipped_without_keys():
    query = parse("AggSum([g], S(g, x))")
    engine = ClassicalIVM(query, {"S": ("G", "B")})
    # A delta that evaluates to the empty gmr: nothing to apply, no key needed.
    engine._delta_queries[("S", 1)] = (parse("(1 < 0)"), ("__d_S_0", "__d_S_1"))
    engine.apply(insert("S", 1, 2))
    assert engine.result() == {}


def test_classical_group_values_fall_back_to_update_bindings():
    """Group variables named like the update arguments resolve via bindings."""
    query = parse("AggSum([g], S(g, x))")
    engine = ClassicalIVM(query, {"S": ("G", "B")})
    reference = NaiveReevaluation(query, {"S": ("G", "B")})
    stream = StreamGenerator({"S": ("G", "B")}, seed=5, default_domain_size=3).generate(60)
    for update in stream:
        engine.apply(update)
        reference.apply(update)
    assert results_agree(engine.result(), reference.result())
