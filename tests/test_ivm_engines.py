"""Tests for the three IVM engines and their shared interface."""

import pytest

from repro.core.parser import parse
from repro.core.semantics import evaluate
from repro.gmr.database import Database, delete, insert
from repro.gmr.records import EMPTY_RECORD
from repro.ivm.base import result_as_mapping, results_agree
from repro.ivm.classical import ClassicalIVM
from repro.ivm.naive import NaiveReevaluation
from repro.ivm.recursive import RecursiveIVM
from repro.workloads.schemas import CUSTOMER_SCHEMA, UNARY_SCHEMA
from repro.workloads.streams import StreamGenerator

SELFJOIN = parse("Sum(R(x) * R(y) * (x = y))")
SAME_NATION = parse("AggSum([c], C(c, n) * C(c2, n2) * (n = n2))")

ENGINE_CLASSES = [RecursiveIVM, ClassicalIVM, NaiveReevaluation]


@pytest.mark.parametrize("engine_class", ENGINE_CLASSES)
def test_engines_follow_the_example_1_2_trace(engine_class):
    engine = engine_class(SELFJOIN, UNARY_SCHEMA)
    trace = [
        (insert("R", "c"), 1),
        (insert("R", "c"), 4),
        (insert("R", "d"), 5),
        (insert("R", "c"), 10),
        (delete("R", "d"), 9),
        (insert("R", "c"), 16),
        (delete("R", "c"), 9),
    ]
    for update, expected in trace:
        engine.apply(update)
        assert engine.result() == expected
    assert engine.statistics.updates_processed == len(trace)
    assert engine.statistics.seconds_in_updates >= 0.0
    assert engine.statistics.seconds_per_update() >= 0.0


@pytest.mark.parametrize("engine_class", ENGINE_CLASSES)
def test_engines_handle_group_by(engine_class):
    engine = engine_class(SAME_NATION, CUSTOMER_SCHEMA)
    engine.apply_all(
        [insert("C", 1, "FR"), insert("C", 2, "FR"), insert("C", 3, "JP"), delete("C", 2, "FR")]
    )
    assert result_as_mapping(engine.result()) == {(1,): 1, (3,): 1}
    assert engine.group_vars == ("c",)


@pytest.mark.parametrize("engine_class", ENGINE_CLASSES)
def test_engines_match_direct_evaluation_on_random_streams(engine_class):
    stream = StreamGenerator(UNARY_SCHEMA, seed=3, default_domain_size=5).generate(150)
    engine = engine_class(SELFJOIN, UNARY_SCHEMA)
    db = Database(UNARY_SCHEMA)
    for update in stream:
        engine.apply(update)
        db.apply(update)
    assert engine.result() == evaluate(SELFJOIN, db)[EMPTY_RECORD]


def test_recursive_engine_exposes_the_compiled_program():
    engine = RecursiveIVM(SELFJOIN, UNARY_SCHEMA)
    assert "MAPS:" in engine.explain()
    assert engine.generated_source() is None
    assert engine.total_map_entries() == 0
    engine.apply(insert("R", 1))
    assert engine.total_map_entries() == 2
    assert set(engine.map_sizes()) == set(engine.program.maps)


def test_recursive_engine_generated_backend():
    engine = RecursiveIVM(SELFJOIN, UNARY_SCHEMA, backend="generated")
    assert engine.generated_source() is not None
    engine.apply_all([insert("R", "c"), insert("R", "c"), insert("R", "d")])
    assert engine.result() == 5
    with pytest.raises(ValueError):
        RecursiveIVM(SELFJOIN, UNARY_SCHEMA, backend="compiled-to-the-moon")


@pytest.mark.parametrize("engine_class", ENGINE_CLASSES)
def test_engines_can_bootstrap_from_a_database(engine_class, unary_db):
    engine = engine_class(SELFJOIN, UNARY_SCHEMA)
    engine.bootstrap(unary_db)
    assert engine.result() == 5
    engine.apply(insert("R", "c"))
    assert engine.result() == 10


def test_naive_and_classical_keep_their_own_database_copies(unary_db):
    classical = ClassicalIVM(SELFJOIN, UNARY_SCHEMA)
    classical.bootstrap(unary_db)
    classical.apply(insert("R", "c"))
    # The engine's copy changed, the caller's database did not.
    assert unary_db["R"].total() == 3
    assert classical.db["R"].total() == 4


def test_results_agree_normalization():
    assert results_agree(0, {})
    assert results_agree(5, {(): 5})
    assert results_agree({(1,): 2, (2,): 0}, {(1,): 2})
    assert not results_agree({(1,): 2}, {(1,): 3})
    assert result_as_mapping(7) == {(): 7}


def test_engine_repr_mentions_query():
    engine = NaiveReevaluation(SELFJOIN, UNARY_SCHEMA)
    assert "Sum" in repr(engine)
