"""Extended engine scenarios: numeric rings, bootstrap-then-stream, failure injection,
undo streams, and the deferred-inequality path exercised end to end."""

import pytest

from repro.algebra.semirings import FLOAT_FIELD
from repro.core.parser import parse
from repro.core.semantics import evaluate
from repro.gmr.database import Database, delete, insert
from repro.gmr.records import EMPTY_RECORD
from repro.ivm.classical import ClassicalIVM
from repro.ivm.naive import NaiveReevaluation
from repro.ivm.recursive import RecursiveIVM
from repro.workloads.queries import query_by_name
from repro.workloads.streams import StreamGenerator

INEQUALITY_SCHEMA = {"R": ("A", "B"), "S": ("C", "D")}
INEQUALITY_QUERY = parse("Sum(R(a, b) * S(c, d) * (b = c) * (a < d) * d)")


def test_float_valued_aggregates_across_engines():
    schema = {"Sales": ("region", "amount")}
    query = parse("AggSum([r], Sales(r, amount) * amount)")
    updates = [
        insert("Sales", "east", 10.5),
        insert("Sales", "east", 2.25),
        insert("Sales", "west", 7.0),
        delete("Sales", "east", 10.5),
    ]
    recursive = RecursiveIVM(query, schema, ring=FLOAT_FIELD, backend="generated")
    naive = NaiveReevaluation(query, schema, ring=FLOAT_FIELD)
    for update in updates:
        recursive.apply(update)
        naive.apply(update)
    assert recursive.result() == pytest.approx(naive.result())
    assert recursive.result()[("east",)] == pytest.approx(2.25)


def test_bootstrap_then_stream_matches_pure_stream():
    """Starting from a loaded database + a stream equals streaming everything."""
    query = query_by_name("same_nation_per_customer")
    generator = StreamGenerator(query.schema, seed=77, default_domain_size=6)
    history = generator.generate_inserts(60)
    future = generator.generate(60)

    warm_db = Database(query.schema)
    warm_db.apply_all(history.updates)

    bootstrapped = RecursiveIVM(query.expr, query.schema)
    bootstrapped.bootstrap(warm_db)
    bootstrapped.apply_all(future.updates)

    streamed = RecursiveIVM(query.expr, query.schema)
    streamed.apply_all(list(history.updates) + list(future.updates))

    assert bootstrapped.result() == streamed.result()


def test_applying_a_stream_and_its_inverse_returns_to_zero():
    """Failure-injection style check: undoing every update restores the empty state."""
    query = query_by_name("join_sum_product")
    generator = StreamGenerator(query.schema, seed=5, default_domain_size=5)
    stream = generator.generate_inserts(80)
    engine = RecursiveIVM(query.expr, query.schema, backend="generated")
    engine.apply_all(stream.updates)
    assert engine.result() != 0 or engine.total_map_entries() >= 0
    engine.apply_all([update.inverted() for update in reversed(stream.updates)])
    assert engine.result() == 0
    assert engine.total_map_entries() == 0


def test_deleting_never_inserted_tuples_stays_consistent():
    """Negative multiplicities (Remark 5.1) propagate consistently through all engines."""
    query = query_by_name("selfjoin_count")
    updates = [delete("R", "ghost"), delete("R", "ghost"), insert("R", "ghost")]
    engines = [
        RecursiveIVM(query.expr, query.schema),
        ClassicalIVM(query.expr, query.schema),
        NaiveReevaluation(query.expr, query.schema),
    ]
    for update in updates:
        for engine in engines:
            engine.apply(update)
    results = {engine.result() for engine in engines}
    assert len(results) == 1
    # Multiset {ghost: -1}: the self-join count is (-1)² = 1.
    assert results == {1}


def test_inequality_query_streamed_against_direct_evaluation():
    generator = StreamGenerator(INEQUALITY_SCHEMA, seed=13, default_domain_size=6)
    stream = generator.generate(150)
    engine = RecursiveIVM(INEQUALITY_QUERY, INEQUALITY_SCHEMA, backend="generated")
    db = Database(INEQUALITY_SCHEMA)
    for update in stream:
        engine.apply(update)
        db.apply(update)
    assert engine.result() == evaluate(INEQUALITY_QUERY, db)[EMPTY_RECORD]


def test_nested_aggregates_run_on_the_recursive_engine():
    nested = parse("Sum(R(x) * (Sum(R(y)) > 1))")
    engine = RecursiveIVM(nested, {"R": ("A",)}, backend="interpreted")
    naive = NaiveReevaluation(nested, {"R": ("A",)})
    for update in [insert("R", 1), insert("R", 2)]:
        engine.apply(update)
        naive.apply(update)
    assert naive.result() == 2
    assert engine.result() == naive.result()


def test_interpreted_and_generated_backends_share_statistics_shape():
    query = query_by_name("order_count_per_customer")
    generator = StreamGenerator(query.schema, seed=3, default_domain_size=5)
    stream = generator.generate(60)
    interpreted = RecursiveIVM(query.expr, query.schema, backend="interpreted")
    generated = RecursiveIVM(query.expr, query.schema, backend="generated")
    interpreted.apply_all(stream.updates)
    generated.apply_all(stream.updates)
    assert interpreted.result() == generated.result()
    assert interpreted.statistics.updates_processed == generated.statistics.updates_processed
    assert interpreted.runtime.statistics.entries_updated > 0
