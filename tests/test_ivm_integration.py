"""End-to-end integration tests: all engines agree on all canonical queries and streams."""

import pytest
from hypothesis import given, settings

from repro.core.parser import parse
from repro.core.semantics import evaluate
from repro.gmr.database import Database
from repro.ivm.comparison import DEFAULT_ENGINES, cross_validate, measure_engines
from repro.ivm.recursive import RecursiveIVM
from repro.workloads.queries import CANONICAL_QUERIES, chain_count_query, query_by_name
from repro.workloads.schemas import UNARY_SCHEMA
from repro.workloads.streams import StreamGenerator
from repro.workloads.tpch_like import SalesStreamGenerator
from tests.conftest import simple_unary_queries, unary_update_streams


@pytest.mark.parametrize("query", CANONICAL_QUERIES, ids=[q.name for q in CANONICAL_QUERIES])
def test_all_engines_agree_on_canonical_queries(query):
    stream = StreamGenerator(query.schema, seed=23, default_domain_size=7).generate(120)
    disagreement = cross_validate(query.expr, query.schema, stream.updates, check_every=30)
    assert disagreement is None, disagreement


@pytest.mark.parametrize("query", CANONICAL_QUERIES, ids=[q.name for q in CANONICAL_QUERIES])
def test_recursive_engine_matches_direct_evaluation(query):
    stream = StreamGenerator(query.schema, seed=29, default_domain_size=6).generate(100)
    engine = RecursiveIVM(query.expr, query.schema, backend="generated")
    db = Database(query.schema)
    for update in stream:
        engine.apply(update)
        db.apply(update)
    direct = evaluate(query.aggregate, db)
    expected = {record.values_for(query.aggregate.group_vars): value for record, value in direct.items()}
    observed = engine.result()
    if not query.aggregate.group_vars:
        assert observed == expected.get((), 0)
    else:
        assert observed == expected


def test_skewed_streams_and_group_by():
    query = query_by_name("same_nation_per_customer")
    generator = StreamGenerator(query.schema, seed=41, default_domain_size=30, zipf_s=1.2)
    stream = generator.generate(200)
    assert cross_validate(query.expr, query.schema, stream.updates, check_every=50) is None


def test_sales_stream_revenue_per_nation():
    query = query_by_name("revenue_per_nation")
    generator = SalesStreamGenerator(customers=12, seed=9)
    stream = generator.generate(60)
    assert cross_validate(query.expr, query.schema, stream.updates, check_every=40) is None


def test_chain_join_of_degree_four():
    query = chain_count_query(4)
    generator = StreamGenerator(query.schema, seed=17, default_domain_size=3)
    stream = generator.generate(80)
    engines = {
        "recursive": DEFAULT_ENGINES["recursive"],
        "naive": DEFAULT_ENGINES["naive"],
    }
    assert cross_validate(query.expr, query.schema, stream.updates, engines=engines, check_every=20) is None


@settings(max_examples=20, deadline=None)
@given(simple_unary_queries(), unary_update_streams(max_length=20))
def test_random_queries_and_streams_property(query, updates):
    """Property: on random small queries and valid streams, all engines agree everywhere."""
    disagreement = cross_validate(query, UNARY_SCHEMA, updates, check_every=1)
    assert disagreement is None, disagreement


def test_cross_validation_reports_disagreements():
    """A deliberately broken engine is caught and reported with context."""
    from repro.ivm.naive import NaiveReevaluation

    class BrokenEngine(NaiveReevaluation):
        def result(self):
            value = super().result()
            return value + 1 if not self.query.group_vars else value

    query = parse("Sum(R(x))")
    engines = {
        "naive": lambda q, s: NaiveReevaluation(q, s),
        "broken": lambda q, s: BrokenEngine(q, s),
    }
    stream = StreamGenerator(UNARY_SCHEMA, seed=1).generate(5)
    disagreement = cross_validate(query, UNARY_SCHEMA, stream.updates, engines=engines)
    assert disagreement is not None
    assert disagreement.position == 0
    assert "broken" in disagreement.results
    assert "Disagreement" in repr(disagreement)


def test_measure_engines_returns_comparable_numbers():
    query = query_by_name("selfjoin_count")
    generator = StreamGenerator(query.schema, seed=2, default_domain_size=10)
    warmup = generator.generate_inserts(100)
    measured = generator.generate(50)
    results = measure_engines(
        query.expr,
        query.schema,
        warmup.updates,
        measured.updates,
        engines={"recursive": DEFAULT_ENGINES["recursive"], "naive": DEFAULT_ENGINES["naive"]},
    )
    by_name = {measurement.engine: measurement for measurement in results}
    assert set(by_name) == {"recursive", "naive"}
    for measurement in results:
        assert measurement.updates == len(measured)
        assert measurement.total_seconds > 0
        assert measurement.updates_per_second > 0
        assert measurement.seconds_per_update > 0
    assert by_name["recursive"].final_result == by_name["naive"].final_result
    assert "map_entries" in by_name["recursive"].extra
