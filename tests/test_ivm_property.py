"""Randomized cross-engine equivalence properties.

All four execution strategies — naive re-evaluation, classical first-order
IVM, and the recursive engine under both the interpreted and the generated
backend — must agree on every checked prefix of randomized update streams
that mix insertions and deletions, both when starting from the empty database
and when bootstrapped from an already-populated one.
"""

import random

import pytest

from repro.core.parser import parse
from repro.gmr.database import Database
from repro.ivm.base import results_agree
from repro.ivm.classical import ClassicalIVM
from repro.ivm.comparison import cross_validate
from repro.ivm.naive import NaiveReevaluation
from repro.ivm.recursive import RecursiveIVM
from repro.workloads.streams import StreamGenerator

PROPERTY_QUERIES = [
    ("Sum(R(x) * R(y) * (x = y))", {"R": ("A",)}),
    ("Sum(R(x) * x)", {"R": ("A",)}),
    ("AggSum([a], R(a, b) * b)", {"R": ("A", "B")}),
    ("AggSum([a], R(a, b) * S(b, d) * d)", {"R": ("A", "B"), "S": ("C", "D")}),
    ("Sum(R(a, b) * S(c, d) * (b = c) * (a < d) * d)", {"R": ("A", "B"), "S": ("C", "D")}),
    ("Sum(R(a, b) * S(c, d) * T(e, f) * (b = c) * (d = e) * a * f)",
     {"R": ("A", "B"), "S": ("C", "D"), "T": ("E", "F")}),
]

ALL_ENGINES = {
    "naive": lambda query, schema: NaiveReevaluation(query, schema),
    "classical": lambda query, schema: ClassicalIVM(query, schema),
    "recursive-interpreted": lambda query, schema: RecursiveIVM(query, schema, backend="interpreted"),
    "recursive-generated": lambda query, schema: RecursiveIVM(query, schema, backend="generated"),
}


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("text,schema", PROPERTY_QUERIES, ids=[t for t, _ in PROPERTY_QUERIES])
def test_engines_agree_on_random_streams(text, schema, seed):
    query = parse(text)
    rng = random.Random(seed)
    generator = StreamGenerator(
        schema,
        seed=seed * 101 + 7,
        default_domain_size=rng.choice([3, 5, 8]),
        delete_fraction=rng.choice([0.2, 0.4]),
    )
    stream = generator.generate(120)
    assert stream.delete_count() > 0, "property streams must mix deletions in"
    disagreement = cross_validate(query, schema, stream.updates, engines=ALL_ENGINES, check_every=7)
    assert disagreement is None, disagreement


@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("text,schema", PROPERTY_QUERIES, ids=[t for t, _ in PROPERTY_QUERIES])
def test_engines_agree_after_bootstrap(text, schema, seed):
    """Engines bootstrapped from a populated database then fed a mixed stream."""
    query = parse(text)
    generator = StreamGenerator(schema, seed=seed * 31 + 3, default_domain_size=4)
    db = Database(schema=schema)
    for update in generator.generate_inserts(80):
        db.apply(update)

    engines = {name: factory(query, schema) for name, factory in ALL_ENGINES.items()}
    for engine in engines.values():
        engine.bootstrap(db)

    reference = engines["naive"]
    for name, engine in engines.items():
        assert results_agree(reference.result(), engine.result()), (
            f"{name} disagrees immediately after bootstrap"
        )

    stream = generator.generate(120)
    for position, update in enumerate(stream):
        for engine in engines.values():
            engine.apply(update)
        if position % 11 == 0 or position == len(stream) - 1:
            for name, engine in engines.items():
                assert results_agree(reference.result(), engine.result()), (
                    f"{name} disagrees after update #{position}: {update!r}"
                )


@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("text,schema", PROPERTY_QUERIES, ids=[t for t, _ in PROPERTY_QUERIES])
def test_normalized_and_unnormalized_programs_agree(text, schema, seed):
    """Ring normalization is a pure rewrite: identical results on random streams.

    The normalized and the ``normalize=False`` compilations of the same query
    run side by side (under both recursive backends) against the naive
    reference across a randomized insert/delete stream — every checked prefix
    must agree, per-tuple and batched alike.
    """
    query = parse(text)
    engines = {
        "naive": lambda query, schema: NaiveReevaluation(query, schema),
        "interpreted-normalized": lambda query, schema: RecursiveIVM(
            query, schema, backend="interpreted", normalize=True
        ),
        "interpreted-raw": lambda query, schema: RecursiveIVM(
            query, schema, backend="interpreted", normalize=False
        ),
        "generated-normalized": lambda query, schema: RecursiveIVM(
            query, schema, backend="generated", normalize=True
        ),
        "generated-raw": lambda query, schema: RecursiveIVM(
            query, schema, backend="generated", normalize=False
        ),
    }
    generator = StreamGenerator(schema, seed=seed * 53 + 11, default_domain_size=4)
    stream = generator.generate(120)
    assert stream.delete_count() > 0
    disagreement = cross_validate(query, schema, stream.updates, engines=engines, check_every=7)
    assert disagreement is None, disagreement

    rng = random.Random(seed + 29)
    reference = NaiveReevaluation(query, schema)
    reference.apply_all(stream)
    for name, factory in engines.items():
        if name == "naive":
            continue
        engine = factory(query, schema)
        position = 0
        while position < len(stream):
            size = rng.randint(1, 40)
            engine.apply_batch(stream.updates[position : position + size])
            position += size
        assert results_agree(reference.result(), engine.result()), name


@pytest.mark.parametrize("text,schema", PROPERTY_QUERIES[:4], ids=[t for t, _ in PROPERTY_QUERIES[:4]])
def test_batched_engines_agree_with_sequential_reference(text, schema):
    """Random batch sizes: batched application agrees with the naive reference."""
    query = parse(text)
    rng = random.Random(13)
    generator = StreamGenerator(schema, seed=97, default_domain_size=4)
    stream = generator.generate(150)
    reference = NaiveReevaluation(query, schema)
    reference.apply_all(stream)
    for name, factory in ALL_ENGINES.items():
        engine = factory(query, schema)
        position = 0
        while position < len(stream):
            size = rng.randint(1, 40)
            engine.apply_batch(stream.updates[position : position + size])
            position += size
        assert results_agree(reference.result(), engine.result()), name
