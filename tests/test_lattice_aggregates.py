"""Randomized lattice-aggregate maintenance properties.

MIN/MAX (tropical semirings) and top-k flow through the whole stack now, so
the same cross-validation discipline as :mod:`tests.test_ivm_property`
applies: every backend — naive re-evaluation, classical (recompute-and-diff
fallback), and the recursive engine under the interpreted and the generated
executor — must match *direct evaluation over the live multiset* on every
checked prefix of randomized insert/delete streams.  Deletions are the whole
point: none of these structures has an additive inverse, so agreement proves
the maintenance plan (integer counters + tracked recomputes + support
sidecars) rather than delta folding.

Also covered, at the session layer: CDC payload equivalence (a shadow built
by overwrite-or-drop replay equals the live result), mid-trace
snapshot/restore (including across shard counts), and batched application.
"""

import random

import pytest

from repro.algebra.semirings import resolve_semiring
from repro.core.parser import parse
from repro.gmr.database import Update
from repro.ivm.base import result_as_mapping, results_agree
from repro.ivm.classical import ClassicalIVM
from repro.ivm.naive import NaiveReevaluation
from repro.ivm.recursive import RecursiveIVM
from repro.session import Session
from repro.workloads.streams import StreamGenerator

SCHEMA = {"P": ("G", "S")}
QUERY = "AggSum([g], P(g, s) * s)"

JOIN_SCHEMA = {"P": ("G", "K"), "Q": ("K", "S")}
JOIN_QUERY = "AggSum([g], P(g, k) * Q(k, s) * s)"

#: Scores drawn as floats so tropical arithmetic stays in one type.
SCORES = [float(v) for v in range(1, 13)]

LATTICE_RINGS = ["min-plus", "max-plus", "top3", "top2-min"]


def lattice_engines(ring):
    """All four execution strategies over an explicit coefficient structure."""
    return {
        "naive": lambda query, schema: NaiveReevaluation(query, schema, ring=ring),
        "classical": lambda query, schema: ClassicalIVM(query, schema, ring=ring),
        "interpreted": lambda query, schema: RecursiveIVM(
            query, schema, ring=ring, backend="interpreted"
        ),
        "generated": lambda query, schema: RecursiveIVM(
            query, schema, ring=ring, backend="generated"
        ),
    }


def direct_single(ring, rows):
    """Fold the live ``P(g, s)`` multiset directly: ``{(g,): ⊕ coerce(s)}``."""
    expected = {}
    for group, score in rows:
        value = ring.coerce(score)
        expected[(group,)] = ring.add(expected.get((group,), ring.zero), value)
    return {key: value for key, value in expected.items() if not ring.is_zero(value)}


def direct_join(ring, p_rows, q_rows):
    """Direct evaluation of the join query over the live multisets."""
    expected = {}
    for group, key in p_rows:
        for other, score in q_rows:
            if key != other:
                continue
            value = ring.coerce(score)
            expected[(group,)] = ring.add(expected.get((group,), ring.zero), value)
    return {key: value for key, value in expected.items() if not ring.is_zero(value)}


@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("ring_name", LATTICE_RINGS)
def test_backends_match_direct_evaluation_under_churn(ring_name, seed):
    ring = resolve_semiring(ring_name)
    query = parse(QUERY)
    engines = {
        name: factory(query, SCHEMA) for name, factory in lattice_engines(ring).items()
    }
    generator = StreamGenerator(
        SCHEMA,
        domains={"S": SCORES},
        seed=seed * 71 + 5,
        default_domain_size=5,
        delete_fraction=0.35,
    )
    stream = generator.generate(160)
    assert stream.delete_count() > 0, "lattice property streams must mix deletions in"
    live = []  # the stream is pre-generated; track the prefix multiset ourselves
    for position, update in enumerate(stream):
        live.append(update.values) if update.is_insert else live.remove(update.values)
        for engine in engines.values():
            engine.apply(update)
        if position % 9 == 0 or position == len(stream) - 1:
            expected = direct_single(ring, live)
            for name, engine in engines.items():
                assert results_agree(expected, engine.result(), ring=ring), (
                    f"{ring_name}/{name} diverges from direct evaluation after "
                    f"update #{position}: {update!r}"
                )


@pytest.mark.parametrize("ring_name", ["min-plus", "top3"])
def test_backends_match_direct_evaluation_on_joins(ring_name):
    """Joins force the tracked-recompute path (no direct support shape)."""
    ring = resolve_semiring(ring_name)
    query = parse(JOIN_QUERY)
    engines = {
        name: factory(query, JOIN_SCHEMA)
        for name, factory in lattice_engines(ring).items()
    }
    generator = StreamGenerator(
        JOIN_SCHEMA,
        domains={"S": SCORES},
        seed=37,
        default_domain_size=4,
        delete_fraction=0.3,
    )
    stream = generator.generate(140)
    assert stream.delete_count() > 0
    live = {"P": [], "Q": []}
    for position, update in enumerate(stream):
        rows = live[update.relation]
        rows.append(update.values) if update.is_insert else rows.remove(update.values)
        for engine in engines.values():
            engine.apply(update)
        if position % 11 == 0 or position == len(stream) - 1:
            expected = direct_join(ring, live["P"], live["Q"])
            for name, engine in engines.items():
                assert results_agree(expected, engine.result(), ring=ring), (
                    f"{ring_name}/{name} diverges on the join after "
                    f"update #{position}: {update!r}"
                )


@pytest.mark.parametrize("ring_name", LATTICE_RINGS)
def test_batched_application_matches_sequential(ring_name):
    """Random batch sizes agree with one-at-a-time application (both executors)."""
    ring = resolve_semiring(ring_name)
    query = parse(QUERY)
    rng = random.Random(23)
    generator = StreamGenerator(
        SCHEMA, domains={"S": SCORES}, seed=61, default_domain_size=5, delete_fraction=0.3
    )
    stream = generator.generate(150)
    expected = direct_single(ring, generator.live_tuples("P"))
    for backend in ("interpreted", "generated"):
        engine = RecursiveIVM(query, SCHEMA, ring=ring, backend=backend)
        position = 0
        while position < len(stream):
            size = rng.randint(1, 30)
            engine.apply_batch(stream.updates[position : position + size])
            position += size
        assert results_agree(expected, engine.result(), ring=ring), backend


def _shadow_callback(ring, shadow):
    """Overwrite-or-drop replay: the semiring CDC contract."""

    def callback(changes):
        for key, value in changes.items():
            if ring.is_zero(value):
                shadow.pop(key, None)
            else:
                shadow[key] = value

    return callback


@pytest.mark.parametrize("ring_name", ["min-plus", "max-plus", "top3"])
def test_session_cdc_shadows_reconstruct_every_backend(ring_name):
    """One session, one view per backend, a shadow per view: after a full
    from-empty trace every shadow equals its view's result mapping — the CDC
    payloads carry post-update values with ``ring.zero`` marking removal."""
    ring = resolve_semiring(ring_name)
    session = Session(SCHEMA, ring=ring)
    shadows = {}
    for backend in ("generated", "interpreted", "classical", "naive"):
        view = session.view(f"v_{backend}", QUERY, backend=backend)
        shadows[backend] = ({}, view)
        view.on_change(_shadow_callback(ring, shadows[backend][0]))
    generator = StreamGenerator(
        SCHEMA, domains={"S": SCORES}, seed=91, default_domain_size=5, delete_fraction=0.35
    )
    stream = generator.generate(130)
    assert stream.delete_count() > 0
    for update in stream:
        session.apply(update)
    expected = direct_single(ring, generator.live_tuples("P"))
    for backend, (shadow, view) in shadows.items():
        assert view.result_mapping() == expected, backend
        assert shadow == expected, f"{ring_name}/{backend} CDC shadow diverged"


@pytest.mark.parametrize("shards", [1, 3])
@pytest.mark.parametrize("ring_name", ["min-plus", "top3"])
def test_snapshot_restore_mid_trace(ring_name, shards):
    """Snapshot mid-churn, restore (same and different shard count), finish the
    trace on both sessions: identical results, both equal to direct evaluation."""
    ring = resolve_semiring(ring_name)
    session = Session(SCHEMA, ring=ring, shards=shards)
    session.view("gen", QUERY, backend="generated")
    session.view("interp", QUERY, backend="interpreted")
    generator = StreamGenerator(
        SCHEMA, domains={"S": SCORES}, seed=17, default_domain_size=5, delete_fraction=0.3
    )
    stream = generator.generate(120)
    for update in stream.updates[:60]:
        session.apply(update)
    snapshot = session.snapshot()
    restored = Session.restore(snapshot)
    restored_resharded = Session.restore(snapshot, shards=shards % 3 + 1)
    for update in stream.updates[60:]:
        session.apply(update)
        restored.apply(update)
        restored_resharded.apply(update)
    expected = direct_single(ring, generator.live_tuples("P"))
    for label, candidate in (
        ("original", session),
        ("restored", restored),
        ("restored-resharded", restored_resharded),
    ):
        for view_name in ("gen", "interp"):
            view = candidate.views[view_name]
            assert view.result_mapping() == expected, f"{label}/{view_name}"


def test_untracked_noninvertible_lint_fires_on_a_gutted_plan():
    """The CI lint rule actually detects a map whose deletion story is missing."""
    from repro.algebra.semirings import MIN_PLUS
    from repro.analysis.ir_lint import lint_program
    from repro.compiler.compile import compile_query

    program = compile_query(parse(QUERY), SCHEMA, name="v", ring=MIN_PLUS)
    assert not [
        finding
        for finding in lint_program(program)
        if finding.kind == "untracked-noninvertible"
    ], "a freshly compiled plan must be clean"
    # Gut the plan: pretend the result map has no strategy at all.
    program.maintenance.strategies.pop("v", None)
    kinds = [finding.kind for finding in lint_program(program)]
    assert "untracked-noninvertible" in kinds
