"""Randomized equivalence properties for nested-aggregate queries.

Every execution strategy — the compiled hierarchy under the generated and the
interpreted backend, classical first-order IVM, and naive re-evaluation —
must agree with the *direct evaluator* (``repro.core.semantics.evaluate`` over
a mirrored database) on every checked prefix of randomized mixed
insert/delete traces, from the empty database, after bootstrap from a
populated one, and across a session snapshot/restore cycle.
"""

import random

import pytest

from repro.core.parser import parse
from repro.core.semantics import evaluate
from repro.gmr.database import Database, delete, insert
from repro.ivm.base import result_as_mapping, results_agree
from repro.ivm.classical import ClassicalIVM
from repro.ivm.naive import NaiveReevaluation
from repro.ivm.recursive import RecursiveIVM
from repro.session import Session

NESTED_PROPERTY_QUERIES = [
    # Per-group sales strictly below the global total (paper-style decision support).
    ("AggSum([g], R(g, x) * (x < Sum(R(g2, x2) * x2)) * x)", {"R": ("G", "X")}),
    # HAVING: per-group totals for groups with more than two rows.
    ("AggSum([g], AggSum([g], R(g, x) * x) * (Sum(R(g, y)) > 2))", {"R": ("G", "X")}),
    # Correlated subquery against a second relation.
    ("AggSum([g], R(g, x) * (x < Sum(S(g, y) * y)) * x)", {"R": ("G", "X"), "S": ("G", "Y")}),
    # Scalar nested comparison without grouping.
    ("Sum(R(g, x) * (x < Sum(R(g2, x2) * x2)) * x)", {"R": ("G", "X")}),
]

ALL_BACKENDS = {
    "generated": lambda query, schema: RecursiveIVM(query, schema, backend="generated"),
    "interpreted": lambda query, schema: RecursiveIVM(query, schema, backend="interpreted"),
    "classical": lambda query, schema: ClassicalIVM(query, schema),
    "naive": lambda query, schema: NaiveReevaluation(query, schema),
}


def mixed_stream(schema, count, seed, delete_fraction=0.35, groups=4, domain=7):
    rng = random.Random(seed)
    relations = sorted(schema)
    live, updates = [], []
    for _ in range(count):
        if live and rng.random() < delete_fraction:
            updates.append(delete(*live.pop(rng.randrange(len(live)))))
        else:
            relation = rng.choice(relations)
            row = (relation, rng.randrange(groups)) + tuple(
                rng.randrange(domain) for _ in range(len(schema[relation]) - 1)
            )
            live.append(row)
            updates.append(insert(*row))
    return updates


def direct_result(query, db):
    """The direct evaluator's result as a key-tuple mapping."""
    value = evaluate(query, db)
    mapping = {}
    for record, multiplicity in value.items():
        if multiplicity != 0:
            mapping[record.values_for(query.group_vars)] = multiplicity
    return mapping


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize(
    "text,schema", NESTED_PROPERTY_QUERIES, ids=[t for t, _ in NESTED_PROPERTY_QUERIES]
)
def test_all_backends_agree_with_direct_evaluation(text, schema, seed):
    query = parse(text)
    engines = {name: factory(query, schema) for name, factory in ALL_BACKENDS.items()}
    db = Database(schema=schema)
    stream = mixed_stream(schema, 110, seed=seed * 59 + 5)
    assert any(update.sign < 0 for update in stream), "traces must mix deletions in"
    for position, update in enumerate(stream):
        db.apply(update)
        for engine in engines.values():
            engine.apply(update)
        if position % 13 == 0 or position == len(stream) - 1:
            expected = direct_result(query, db)
            for name, engine in engines.items():
                assert result_as_mapping(engine.result()) == expected, (
                    f"{name} disagrees with direct evaluation after update "
                    f"#{position}: {update!r}"
                )


@pytest.mark.parametrize(
    "text,schema", NESTED_PROPERTY_QUERIES, ids=[t for t, _ in NESTED_PROPERTY_QUERIES]
)
def test_all_backends_agree_after_bootstrap(text, schema):
    """Bootstrap from a populated database, then keep streaming mixed updates."""
    query = parse(text)
    db = Database(schema=schema)
    for update in mixed_stream(schema, 70, seed=17, delete_fraction=0.15):
        db.apply(update)

    engines = {name: factory(query, schema) for name, factory in ALL_BACKENDS.items()}
    for engine in engines.values():
        engine.bootstrap(db)
    expected = direct_result(query, db)
    for name, engine in engines.items():
        assert result_as_mapping(engine.result()) == expected, (
            f"{name} disagrees immediately after bootstrap"
        )

    for position, update in enumerate(mixed_stream(schema, 80, seed=19)):
        db.apply(update)
        for engine in engines.values():
            engine.apply(update)
        if position % 11 == 0 or position == 79:
            expected = direct_result(query, db)
            for name, engine in engines.items():
                assert result_as_mapping(engine.result()) == expected, (
                    f"{name} disagrees after update #{position}"
                )


def test_generated_backend_matches_direct_evaluation_on_long_trace():
    """The acceptance trace: a paper-style nested query on the generated
    backend over 1000+ randomized mixed updates."""
    text, schema = NESTED_PROPERTY_QUERIES[0]
    query = parse(text)
    engine = RecursiveIVM(query, schema, backend="generated")
    db = Database(schema=schema)
    stream = mixed_stream(schema, 1200, seed=101, groups=6, domain=12)
    for position, update in enumerate(stream):
        db.apply(update)
        engine.apply(update)
        if position % 97 == 0 or position == len(stream) - 1:
            assert result_as_mapping(engine.result()) == direct_result(query, db), position


@pytest.mark.parametrize("backend", ["generated", "interpreted"])
def test_session_snapshot_restore_preserves_nested_views(backend):
    """Nested-aggregate views survive snapshot/restore mid-stream and keep
    maintaining correctly afterwards."""
    schema = {"R": ("G", "X")}
    text = NESTED_PROPERTY_QUERIES[1][0]
    query = parse(text)
    session = Session(schema)
    view = session.view("busy", query, backend=backend)

    first, second = mixed_stream(schema, 90, seed=71), mixed_stream(schema, 90, seed=73)
    db = Database(schema=schema)
    for update in first:
        session.apply(update)
        db.apply(update)

    revived = Session.restore(session.snapshot())
    assert result_as_mapping(revived["busy"].result()) == direct_result(query, db)

    for update in second:
        session.apply(update)
        revived.apply(update)
        db.apply(update)
    expected = direct_result(query, db)
    assert result_as_mapping(view.result()) == expected
    assert result_as_mapping(revived["busy"].result()) == expected


def test_streams_with_batches_agree_with_sequential_naive():
    text, schema = NESTED_PROPERTY_QUERIES[2]
    query = parse(text)
    stream = mixed_stream(schema, 200, seed=83)
    reference = NaiveReevaluation(query, schema)
    reference.apply_all(stream)
    rng = random.Random(5)
    for name, factory in ALL_BACKENDS.items():
        engine = factory(query, schema)
        position = 0
        while position < len(stream):
            size = rng.randint(1, 35)
            engine.apply_batch(stream[position : position + size])
            position += size
        assert results_agree(reference.result(), engine.result()), name
