"""Smoke tests of the top-level public API (what README's quickstart relies on)."""

import repro


def test_version_and_all_exports_resolve():
    assert repro.__version__
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_readme_session_quickstart_flow():
    """The exact flow shown in the README "Session API" quickstart."""
    session = repro.Session({"R": ("A", "B")})
    total = session.view("total", "Sum(R(a, b) * b)")
    per_a = session.view("per_a", "AggSum([a], R(a, b) * b)")

    deltas = []
    per_a.on_change(lambda changes: deltas.append(changes))

    session.insert("R", 1, 10)
    session.insert("R", 2, 5)
    session.insert("R", 1, 3)
    session.delete("R", 2, 5)
    assert total.result() == 13
    assert per_a.result() == {(1,): 13}
    assert deltas == [{(1,): 10}, {(2,): 5}, {(1,): 3}, {(2,): -5}]

    restored = repro.Session.restore(session.snapshot())
    assert restored["total"].result() == 13


def test_readme_engine_quickstart_flow():
    """The exact flow shown in the README low-level engine quickstart."""
    schema = {"R": ("A",)}
    query = repro.parse("Sum(R(x) * R(y) * (x = y))")

    engine = repro.RecursiveIVM(query, schema)
    engine.apply(repro.insert("R", "c"))
    engine.apply(repro.insert("R", "c"))
    engine.apply(repro.insert("R", "d"))
    assert engine.result() == 5

    engine.apply(repro.delete("R", "d"))
    assert engine.result() == 4


def test_result_as_mapping_through_top_level_namespace():
    assert repro.result_as_mapping(5) == {(): 5}
    assert repro.result_as_mapping(0) == {}
    assert repro.result_as_mapping({(1,): 2, (3,): 0}) == {(1,): 2}


def test_engine_statistics_through_top_level_namespace():
    statistics = repro.EngineStatistics()
    assert statistics.updates_processed == 0
    assert statistics.seconds_per_update() == 0.0

    engine = repro.RecursiveIVM(repro.parse("Sum(R(x))"), {"R": ("A",)})
    engine.apply(repro.insert("R", 1))
    assert isinstance(engine.statistics, repro.EngineStatistics)
    assert engine.statistics.updates_processed == 1
    assert engine.statistics.seconds_per_update() >= 0.0


def test_session_facade_exports():
    assert repro.Session is not None
    session = repro.Session({"R": ("A",)})
    view = session.view("q", "Sum(R(x))")
    assert isinstance(view, repro.MaterializedView)
    assert isinstance(session._groups["generated"].catalog, repro.MapCatalog)


def test_sql_frontend_through_top_level_namespace():
    schema = {"C": ("cid", "nation")}
    query = repro.sql_to_agca(
        "SELECT C1.cid, SUM(1) FROM C C1, C C2 WHERE C1.nation = C2.nation GROUP BY C1.cid",
        schema,
    )
    engine = repro.RecursiveIVM(query, schema, backend="generated")
    engine.apply_all(
        [repro.insert("C", 1, "FR"), repro.insert("C", 2, "FR"), repro.insert("C", 3, "JP")]
    )
    assert engine.result() == {(1,): 2, (2,): 2, (3,): 1}


def test_direct_evaluation_and_delta_through_top_level_namespace():
    db = repro.Database({"R": ("A",)})
    db.load("R", [("c",), ("c",), ("d",)])
    query = repro.parse("Sum(R(x) * R(y) * (x = y))")
    result = repro.evaluate(query, db)
    assert result[repro.Record()] == 5
    change = repro.evaluate(repro.delta_for_update(query, repro.insert("R", "c")), db)
    assert change[repro.Record()] == 5
    assert repro.degree(query) == 2


def test_compile_and_explain_through_top_level_namespace():
    program = repro.compile_query(
        repro.parse("Sum(R(a, b) * S(c, d) * (b = c) * a)"),
        {"R": ("A", "B"), "S": ("C", "D")},
    )
    assert "TRIGGERS:" in program.explain()
    runtime = repro.TriggerRuntime(program)
    runtime.apply(repro.insert("R", 2, 7))
    runtime.apply(repro.insert("S", 7, 1))
    assert runtime.result() == 2
    generated = repro.generate_python(program)
    assert "def apply_update" in generated.source
