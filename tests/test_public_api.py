"""Smoke tests of the top-level public API (what README's quickstart relies on)."""

import repro


def test_version_and_all_exports_resolve():
    assert repro.__version__
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_readme_quickstart_flow():
    """The exact flow shown in the README quickstart."""
    schema = {"R": ("A",)}
    query = repro.parse("Sum(R(x) * R(y) * (x = y))")

    engine = repro.RecursiveIVM(query, schema)
    engine.apply(repro.insert("R", "c"))
    engine.apply(repro.insert("R", "c"))
    engine.apply(repro.insert("R", "d"))
    assert engine.result() == 5

    engine.apply(repro.delete("R", "d"))
    assert engine.result() == 4


def test_sql_frontend_through_top_level_namespace():
    schema = {"C": ("cid", "nation")}
    query = repro.sql_to_agca(
        "SELECT C1.cid, SUM(1) FROM C C1, C C2 WHERE C1.nation = C2.nation GROUP BY C1.cid",
        schema,
    )
    engine = repro.RecursiveIVM(query, schema, backend="generated")
    engine.apply_all(
        [repro.insert("C", 1, "FR"), repro.insert("C", 2, "FR"), repro.insert("C", 3, "JP")]
    )
    assert engine.result() == {(1,): 2, (2,): 2, (3,): 1}


def test_direct_evaluation_and_delta_through_top_level_namespace():
    db = repro.Database({"R": ("A",)})
    db.load("R", [("c",), ("c",), ("d",)])
    query = repro.parse("Sum(R(x) * R(y) * (x = y))")
    result = repro.evaluate(query, db)
    assert result[repro.Record()] == 5
    change = repro.evaluate(repro.delta_for_update(query, repro.insert("R", "c")), db)
    assert change[repro.Record()] == 5
    assert repro.degree(query) == 2


def test_compile_and_explain_through_top_level_namespace():
    program = repro.compile_query(
        repro.parse("Sum(R(a, b) * S(c, d) * (b = c) * a)"),
        {"R": ("A", "B"), "S": ("C", "D")},
    )
    assert "TRIGGERS:" in program.explain()
    runtime = repro.TriggerRuntime(program)
    runtime.apply(repro.insert("R", 2, 7))
    runtime.apply(repro.insert("S", 7, 1))
    assert runtime.result() == 2
    generated = repro.generate_python(program)
    assert "def apply_update" in generated.source
