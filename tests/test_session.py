"""Tests of the multi-view Session facade.

Covers: agreement of a multi-view session with standalone single-query
engines on randomized mixed insert/delete streams (for every backend), map
sharing across views, change-data-capture subscriptions (replaying deltas
reconstructs results), snapshot/restore, late view registration, and the
query-input conveniences (SQL text, AGCA text, expressions).
"""

import random

import pytest

from repro.core.errors import ParseError
from repro.core.parser import parse
from repro.gmr.database import insert
from repro.ivm.base import result_as_mapping
from repro.ivm.classical import ClassicalIVM
from repro.ivm.naive import NaiveReevaluation
from repro.ivm.recursive import RecursiveIVM
from repro.session import ALL_BACKENDS, MapCatalog, Session
from repro.workloads.streams import StreamGenerator

RS_SCHEMA = {"R": ("A", "B"), "S": ("C", "D")}

STANDALONE_ENGINES = {
    "generated": lambda query, schema: RecursiveIVM(query, schema, backend="generated"),
    "interpreted": lambda query, schema: RecursiveIVM(query, schema, backend="interpreted"),
    "classical": lambda query, schema: ClassicalIVM(query, schema),
    "naive": lambda query, schema: NaiveReevaluation(query, schema),
}

#: A multi-view workload sharing the S-side subquery across three views.
MULTIVIEW_QUERIES = {
    "per_a": "AggSum([a], R(a, b) * S(b, d) * d)",
    "total": "Sum(R(a, b) * S(b, d) * d)",
    "per_a_again": "AggSum([a], R(a, b) * S(b, d) * d)",
}


def make_stream(length=200, seed=5, schema=RS_SCHEMA):
    return StreamGenerator(
        schema, seed=seed, default_domain_size=5, delete_fraction=0.3
    ).generate(length)


# ---------------------------------------------------------------------------
# Basic facade behaviour
# ---------------------------------------------------------------------------


def test_session_single_view_matches_engine():
    session = Session({"R": ("A",)})
    view = session.view("q", "Sum(R(x) * R(y) * (x = y))")
    session.insert("R", "c")
    session.insert("R", "c")
    session.insert("R", "d")
    assert view.result() == 5
    session.delete("R", "d")
    assert view.result() == 4
    assert view.result_mapping() == {(): 4}
    assert session.updates_applied == 4
    assert session.statistics.updates_processed == 4


def test_view_accepts_expr_text_and_sql():
    schema = {"C": ("cid", "nation")}
    expected = {(1,): 2, (2,): 2, (3,): 1}
    text = "AggSum([c], C(c, n) * C(c2, n2) * (n = n2))"
    sql = (
        "SELECT C1.cid, SUM(1) FROM C C1, C C2 "
        "WHERE C1.nation = C2.nation GROUP BY C1.cid"
    )
    session = Session(schema)
    views = [
        session.view("from_expr", parse(text)),
        session.view("from_text", text),
        session.view("from_sql", sql),
    ]
    for update in [insert("C", 1, "FR"), insert("C", 2, "FR"), insert("C", 3, "JP")]:
        session.apply(update)
    for view in views:
        assert view.result() == expected


def test_view_registration_errors():
    session = Session({"R": ("A",)})
    session.view("q", "Sum(R(x))")
    with pytest.raises(ValueError):
        session.view("q", "Sum(R(x))")  # duplicate name
    with pytest.raises(ValueError):
        session.view("other", "Sum(R(x))", backend="vectorized")  # unknown backend
    with pytest.raises(ValueError):
        session.view("", "Sum(R(x))")  # empty name
    with pytest.raises(TypeError):
        session.view("typed", 42)
    with pytest.raises(ParseError):
        session.view("bad_sql", "SELECT broken")
    assert "q" in session
    with pytest.raises(KeyError):
        session["missing"]


def test_results_and_views_accessors():
    session = Session(RS_SCHEMA)
    session.view("a", "Sum(R(a, b) * b)")
    session.view("b", "Sum(S(c, d) * d)", backend="naive")
    session.insert("R", 1, 10)
    session.insert("S", 2, 5)
    assert session.results() == {"a": 10, "b": 5}
    assert set(session.views) == {"a", "b"}
    assert session["a"].backend == "generated"


# ---------------------------------------------------------------------------
# The satellite property test: session vs standalone engines, every backend
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_multiview_session_agrees_with_standalone_engines(seed):
    """One Session carrying a view per backend (plus shared compiled views)
    must agree with standalone single-query engines fed the same randomized
    mixed insert/delete stream, at every checkpoint."""
    rng = random.Random(seed)
    queries = {name: parse(text) for name, text in MULTIVIEW_QUERIES.items()}

    session = Session(RS_SCHEMA)
    views = {}
    references = {}
    for query_name, query in queries.items():
        for backend in ALL_BACKENDS:
            view_name = f"{query_name}_{backend}"
            views[view_name] = session.view(view_name, query, backend=backend)
            references[view_name] = STANDALONE_ENGINES[backend](query, RS_SCHEMA)

    stream = make_stream(length=150, seed=seed * 31 + 1)
    checkpoint = rng.randrange(10, 60)
    for position, update in enumerate(stream, start=1):
        session.apply(update)
        for reference in references.values():
            reference.apply(update)
        if position % checkpoint == 0 or position == len(stream):
            for view_name, view in views.items():
                assert result_as_mapping(view.result()) == result_as_mapping(
                    references[view_name].result()
                ), f"{view_name} diverged after {position} updates"


def test_multiview_session_batch_path_agrees(seed=3):
    queries = {name: parse(text) for name, text in MULTIVIEW_QUERIES.items()}
    session = Session(RS_SCHEMA)
    batched = Session(RS_SCHEMA)
    for query_name, query in queries.items():
        for backend in ALL_BACKENDS:
            session.view(f"{query_name}_{backend}", query, backend=backend)
            batched.view(f"{query_name}_{backend}", query, backend=backend)
    stream = make_stream(length=160, seed=seed)
    session.apply_all(stream)
    for batch in stream.batches(40):
        batched.apply_batch(batch)
    for name, view in session.views.items():
        assert result_as_mapping(view.result()) == result_as_mapping(
            batched[name].result()
        ), name


# ---------------------------------------------------------------------------
# Map sharing
# ---------------------------------------------------------------------------


def test_identical_views_share_result_map():
    session = Session(RS_SCHEMA)
    first = session.view("first", "AggSum([a], R(a, b) * S(b, d) * d)")
    duplicate = session.view("dup", "AggSum([a], R(a, b) * S(b, d) * d)")
    assert not first.shares_storage
    assert duplicate.shares_storage
    report = session.sharing_report()
    assert report["maps_deduplicated"] > 0
    session.insert("R", 1, 2)
    session.insert("S", 2, 7)
    assert first.result() == duplicate.result() == {(1,): 7}


def test_alpha_renamed_views_share_maps():
    """Variable names must not defeat sharing (canonical alpha-renaming)."""
    session = Session(RS_SCHEMA)
    session.view("v1", "AggSum([a], R(a, b) * S(b, d) * d)")
    before = session.sharing_report()["maps"]
    session.view("v2", "AggSum([x], R(x, y) * S(y, z) * z)")
    report = session.sharing_report()
    assert report["maps"] == before  # nothing new materialized
    assert session["v2"].shares_storage
    session.insert("R", 4, 2)
    session.insert("S", 2, 9)
    assert session["v1"].result() == session["v2"].result() == {(4,): 9}


def test_shared_views_use_fewer_maps_than_independent_engines():
    queries = [parse(text) for text in MULTIVIEW_QUERIES.values()]
    session = Session(RS_SCHEMA)
    for index, query in enumerate(queries):
        session.view(f"v{index}", query)
    stream = make_stream(length=120, seed=11)
    session.apply_all(stream)

    engines = [RecursiveIVM(query, RS_SCHEMA, backend="generated") for query in queries]
    for engine in engines:
        engine.apply_all(stream)
    independent_entries = sum(engine.total_map_entries() for engine in engines)
    assert session.total_map_entries() < independent_entries
    for index, engine in enumerate(engines):
        assert result_as_mapping(session[f"v{index}"].result()) == result_as_mapping(
            engine.result()
        )


def test_failed_registration_leaves_catalog_untouched():
    """A rejected view must not orphan registry entries: a later view that
    would deduplicate onto them has to get a correctly maintained map."""
    session = Session(RS_SCHEMA)
    session.view("a_m1", "AggSum([x], S(x, y) * y)")
    # "a" would compile auxiliary maps named "a_m1", colliding with the view above.
    with pytest.raises(ValueError):
        session.view("a", "AggSum([x], R(x, y) * R(x, z) * y * z)")
    retry = session.view("c", "AggSum([x], R(x, y) * R(x, z) * y * z)")
    session.insert("R", 1, 2)
    assert retry.result() == {(1,): 4}


def test_duplicate_registration_skips_history_replay():
    """Alias views are free: registering a duplicate after many updates must
    not rebuild the replayed bootstrap database."""
    session = Session(RS_SCHEMA)
    session.view("orig", "AggSum([a], R(a, b) * S(b, d) * d)")
    for index in range(50):
        session.insert("R", index, index % 7)
    calls = []
    original = session._replayed_database

    def counting_replay():
        calls.append(1)
        return original()

    session._replayed_database = counting_replay
    duplicate = session.view("dup", "AggSum([a], R(a, b) * S(b, d) * d)")
    assert duplicate.shares_storage and calls == []
    session.view("brand_new", "Sum(S(c, d) * d)")
    assert calls == [1]  # a genuinely new map does bootstrap from history


def test_failed_artifact_rebuild_rolls_back_the_catalog(monkeypatch):
    """When rebuilding the execution artifacts fails *after* the catalog
    absorbed the view, the registration must be rolled back completely: the
    name stays usable, no empty group lingers, and later dedup targets stay
    maintained.  (Semirings compile on the generated backend now, so the
    failure is injected into code generation directly.)"""
    import repro.session.session as session_module
    from repro.core.errors import CompilationError

    session = Session({"R": ("A",)})
    session.view("v1", "Sum(R(x))", backend="interpreted")
    session.insert("R", 1)
    real_generate = session_module.generate_python

    def failing_generate(*args, **kwargs):
        raise CompilationError("injected artifact-rebuild failure")

    monkeypatch.setattr(session_module, "generate_python", failing_generate)
    with pytest.raises(CompilationError):
        session.view("v2", "Sum(R(x) * R(y) * (x = y))")  # generated backend
    monkeypatch.setattr(session_module, "generate_python", real_generate)
    assert "generated" not in session._groups
    retry = session.view("v2", "Sum(R(x) * R(y) * (x = y))", backend="interpreted")
    alias = session.view("v3", "Sum(R(x) * R(y) * (x = y))", backend="interpreted")
    session.insert("R", 2)
    assert retry.result() == 2
    assert alias.shares_storage and alias.result() == 2


def test_naive_change_capture_carries_post_update_values_for_semirings():
    """Naive CDC cannot diff with subtraction over a proper semiring; the
    payload instead carries each changed group's *post-update value*, with
    ``ring.zero`` marking a removed group (replaying means overwrite-or-drop
    rather than ring-adding deltas)."""
    from repro.algebra.semirings import MIN_PLUS

    session = Session({"P": ("G", "S")}, ring=MIN_PLUS)
    view = session.view("a", "AggSum([g], P(g, s) * s)", backend="naive")
    seen = []
    view.on_change(lambda changes: seen.append(dict(changes)))
    session.insert("P", 1, 5.0)
    session.insert("P", 1, 3.0)
    session.delete("P", 1, 3.0)  # the minimum climbs back up — no inverse used
    session.delete("P", 1, 5.0)
    assert seen == [
        {(1,): 5.0},
        {(1,): 3.0},
        {(1,): 5.0},
        {(1,): MIN_PLUS.zero},
    ]
    assert view.result_mapping() == {}
    assert session.updates_applied == 4


def test_map_catalog_reports_and_rejects_duplicates():
    from repro.compiler.compile import compile_query

    catalog = MapCatalog(RS_SCHEMA)
    program = compile_query(parse("Sum(R(a, b) * S(b, d) * d)"), RS_SCHEMA, name="v")
    result_map, new_maps = catalog.absorb("v", program)
    assert result_map == "v" and "v" in new_maps
    with pytest.raises(ValueError):
        catalog.absorb("v", program)
    assert catalog.sharing_report()["views"] == 1
    assert catalog.program().result_map == "v"


# ---------------------------------------------------------------------------
# Change-data-capture
# ---------------------------------------------------------------------------


def replay(changes_log, ring_zero=0):
    accumulated = {}
    for changes in changes_log:
        for key, value in changes.items():
            accumulated[key] = accumulated.get(key, ring_zero) + value
    return {key: value for key, value in accumulated.items() if value != ring_zero}


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_on_change_deltas_replay_to_result(backend):
    session = Session(RS_SCHEMA)
    view = session.view("q", "AggSum([a], R(a, b) * S(b, d) * d)", backend=backend)
    log = []
    view.on_change(lambda changes: log.append(dict(changes)))
    stream = make_stream(length=120, seed=23)
    session.apply_all(stream)
    assert replay(log) == view.result_mapping()
    assert log, "the stream must have produced at least one change event"
    for changes in log:
        assert all(value != 0 for value in changes.values()), "deltas must be non-zero"


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_on_change_batch_delivers_one_consolidated_event(backend):
    session = Session(RS_SCHEMA)
    view = session.view("q", "Sum(R(a, b) * S(b, d) * d)", backend=backend)
    events = []
    view.on_change(lambda changes: events.append(dict(changes)))
    session.apply_batch([insert("R", 1, 2), insert("S", 2, 10), insert("R", 3, 2)])
    assert len(events) == 1
    assert replay(events) == view.result_mapping()


def test_on_change_not_fired_for_no_op_updates():
    session = Session(RS_SCHEMA)
    view = session.view("q", "Sum(R(a, b) * S(b, d) * d)")
    events = []
    view.on_change(lambda changes: events.append(changes))
    session.insert("R", 1, 2)  # no matching S tuple: the result stays 0
    assert events == []
    session.insert("S", 2, 5)
    assert len(events) == 1 and view.result() == 5


def test_on_change_unsubscribe_and_shared_map_isolation():
    session = Session(RS_SCHEMA)
    first = session.view("first", "Sum(R(a, b) * b)")
    duplicate = session.view("dup", "Sum(R(a, b) * b)")  # alias of the same map
    first_events, dup_events = [], []
    callback = first.on_change(lambda changes: first_events.append(changes))
    duplicate.on_change(lambda changes: dup_events.append(changes))
    session.insert("R", 1, 10)
    assert len(first_events) == 1 and len(dup_events) == 1
    first.remove_on_change(callback)
    session.insert("R", 2, 20)
    assert len(first_events) == 1 and len(dup_events) == 2


def test_each_subscriber_gets_an_independent_changes_payload():
    """A callback that drains its payload must not corrupt its siblings'."""
    session = Session(RS_SCHEMA)
    first = session.view("first", "Sum(R(a, b) * b)")
    duplicate = session.view("dup", "Sum(R(a, b) * b)")  # alias of the same map
    second_log = []
    first.on_change(lambda changes: changes.clear())  # destructive consumer
    duplicate.on_change(lambda changes: second_log.append(changes))
    session.insert("R", 1, 10)
    assert second_log == [{(): 10}]

    # Same guarantee at the engine level.
    engine = RecursiveIVM(parse("Sum(R(a, b) * b)"), RS_SCHEMA)
    log = []
    engine.on_change(lambda changes: changes.clear())
    engine.on_change(lambda changes: log.append(changes))
    engine.apply(insert("R", 1, 10))
    assert log == [{(): 10}]


def test_engine_level_on_change_matches_session_level():
    """The low-level engines expose the same subscription API."""
    query = parse("AggSum([a], R(a, b) * b)")
    schema = {"R": ("A", "B")}
    stream = make_stream(length=80, seed=9, schema=schema)
    for factory in STANDALONE_ENGINES.values():
        engine = factory(query, schema)
        log = []
        engine.on_change(lambda changes, log=log: log.append(dict(changes)))
        engine.apply_all(stream)
        assert replay(log) == result_as_mapping(engine.result()), engine.name


# ---------------------------------------------------------------------------
# Snapshot / restore
# ---------------------------------------------------------------------------


def test_snapshot_restore_round_trip_all_backends():
    session = Session(RS_SCHEMA)
    for backend in ALL_BACKENDS:
        session.view(backend, "AggSum([a], R(a, b) * S(b, d) * d)", backend=backend)
    stream = make_stream(length=100, seed=17)
    session.apply_all(stream)

    snapshot = session.snapshot()
    restored = Session.restore(snapshot)
    for backend in ALL_BACKENDS:
        assert restored[backend].result() == session[backend].result(), backend

    # The restored session keeps maintaining correctly.
    more = make_stream(length=60, seed=18)
    session.apply_all(more)
    restored.apply_all(more)
    for backend in ALL_BACKENDS:
        assert restored[backend].result() == session[backend].result(), backend


def test_snapshot_is_json_serializable_for_integer_ring():
    import json

    session = Session({"R": ("A",)})
    session.view("q", "Sum(R(x) * R(y) * (x = y))")
    session.view("qn", "Sum(R(x))", backend="naive")
    for update in make_stream(length=50, seed=3, schema={"R": ("A",)}):
        session.apply(update)
    decoded = json.loads(json.dumps(session.snapshot()))
    restored = Session.restore(decoded)
    assert restored["q"].result() == session["q"].result()
    assert restored["qn"].result() == session["qn"].result()


def test_restore_rejects_unknown_format_and_ring():
    session = Session({"R": ("A",)})
    session.view("q", "Sum(R(x))")
    snapshot = session.snapshot()
    with pytest.raises(ValueError):
        Session.restore({**snapshot, "format": "bogus/9"})
    with pytest.raises(ValueError):
        Session.restore({**snapshot, "ring": "martian"})


def test_snapshot_plus_replayed_deltas_reproduce_final_result():
    """The acceptance-criteria flow: snapshot mid-stream, subscribe, replay."""
    session = Session(RS_SCHEMA)
    view = session.view("q", "AggSum([a], R(a, b) * S(b, d) * d)")
    stream = list(make_stream(length=140, seed=29))
    for update in stream[:70]:
        session.apply(update)
    snapshot = session.snapshot()
    deltas = []
    view.on_change(lambda changes: deltas.append(dict(changes)))
    for update in stream[70:]:
        session.apply(update)

    baseline = Session.restore(snapshot)["q"].result_mapping()
    for changes in deltas:
        for key, value in changes.items():
            new_value = baseline.get(key, 0) + value
            if new_value == 0:
                baseline.pop(key, None)
            else:
                baseline[key] = new_value
    assert baseline == view.result_mapping()


# ---------------------------------------------------------------------------
# Late registration
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_view_registered_mid_stream_is_bootstrapped(backend):
    stream = list(make_stream(length=120, seed=37))
    session = Session(RS_SCHEMA)
    early = session.view("early", "AggSum([a], R(a, b) * S(b, d) * d)")
    for update in stream[:60]:
        session.apply(update)
    late = session.view("late", "AggSum([a], R(a, b) * S(b, d) * d)", backend=backend)
    assert late.result_mapping() == early.result_mapping()
    for update in stream[60:]:
        session.apply(update)
    assert late.result_mapping() == early.result_mapping()


def test_late_registration_requires_history():
    session = Session({"R": ("A",)}, track_history=False)
    session.view("q", "Sum(R(x))")
    session.insert("R", 1)
    with pytest.raises(RuntimeError):
        session.view("late", "Sum(R(x) * x)")  # new maps -> needs the history
    # A duplicate of an existing view needs no bootstrap, so it stays legal.
    alias = session.view("alias", "Sum(R(x))")
    assert alias.shares_storage and alias.result() == 1
    # Before any update it is fine.
    fresh = Session({"R": ("A",)}, track_history=False)
    fresh.view("ok", "Sum(R(x))")
    fresh.insert("R", 1)
    assert fresh["ok"].result() == 1


# ---------------------------------------------------------------------------
# Schema validation of updates (arity bugfix)
# ---------------------------------------------------------------------------


def test_insert_with_tuple_instead_of_splat_raises_schema_error():
    from repro.core.errors import SchemaError

    session = Session({"R": ("A", "B")})
    session.view("total", "Sum(R(a, b) * b)")
    with pytest.raises(SchemaError) as excinfo:
        session.insert("R", (1, 2))
    message = str(excinfo.value)
    assert "'R'" in message and "2" in message
    assert "separate arguments" in message


def test_update_validation_names_relation_and_arity():
    from repro.core.errors import SchemaError
    from repro.gmr.database import Update

    session = Session({"R": ("A", "B")})
    session.view("total", "Sum(R(a, b) * b)")
    with pytest.raises(SchemaError, match="expects 2 values"):
        session.delete("R", 1)
    with pytest.raises(SchemaError, match="not declared"):
        session.insert("Q", 1, 2)
    with pytest.raises(SchemaError):
        session.apply(Update(1, "R", (1, 2, 3)))
    # A malformed batch is rejected before any view advances.
    with pytest.raises(SchemaError):
        session.apply_batch([Update(1, "R", (1, 2)), Update(1, "R", (1,))])
    assert session.updates_applied == 0
    assert session["total"].result() == 0


# ---------------------------------------------------------------------------
# Nested-aggregate views through the session (shared hierarchies)
# ---------------------------------------------------------------------------

NESTED_SQL = (
    "SELECT store, SUM(amount) FROM Sales "
    "WHERE amount < (SELECT SUM(amount) FROM Sales) GROUP BY store"
)


def test_nested_views_deduplicate_across_views():
    schema = {"Sales": ("store", "amount")}
    session = Session(schema)
    session.view("below_total", NESTED_SQL)
    session.view("below_total_panel", NESTED_SQL)
    report = session.sharing_report()
    # The duplicate panel aliases the result map *and* the auxiliary maps of
    # the nested hierarchy (inner aggregate + base copy).
    assert report["maps_deduplicated"] >= 3
    assert session["below_total_panel"].shares_storage


def test_nested_view_maintains_and_bootstraps_late():
    schema = {"Sales": ("store", "amount")}
    session = Session(schema)
    view = session.view("below_total", NESTED_SQL)
    reference = NaiveReevaluation(parse_sql_query(NESTED_SQL, schema), schema)
    rng = random.Random(37)
    live = []
    for _ in range(160):
        if live and rng.random() < 0.3:
            from repro.gmr.database import Update

            row = live.pop(rng.randrange(len(live)))
            update = Update(-1, "Sales", row)
        else:
            row = (rng.randrange(4), rng.randrange(9))
            live.append(row)
            update = insert("Sales", *row)
        session.apply(update)
        reference.apply(update)
    assert result_as_mapping(view.result()) == result_as_mapping(reference.result())
    late = session.view("late_copy", NESTED_SQL, backend="interpreted")
    assert result_as_mapping(late.result()) == result_as_mapping(reference.result())


def parse_sql_query(sql, schema):
    from repro.sql.frontend import sql_to_agca

    return sql_to_agca(sql, schema)


# ---------------------------------------------------------------------------
# Transactional batches: a poisoned batch rolls every view back (PR 5)
# ---------------------------------------------------------------------------


def _poisonable_session(shards=1):
    """Views across compiled and engine backends; 'weighted' chokes on strings."""
    schema = {"R": ("A",), "W": ("K", "V")}
    session = Session(schema, shards=shards)
    session.view("count", "Sum(R(x))", backend="generated")
    session.view("weighted", "AggSum([k], W(k, v) * v)", backend="generated")
    session.view("count_i", "Sum(R(x))", backend="interpreted")
    session.view("count_c", "Sum(R(x))", backend="classical")
    session.view("count_n", "Sum(R(x))", backend="naive")
    return session


@pytest.mark.parametrize("shards", [1, 4])
def test_poisoned_batch_leaves_all_views_unchanged(shards):
    """Regression: an exception mid-batch (ring arithmetic on one view) used to
    leave already-advanced groups inconsistent with the rest."""
    from repro.gmr.database import Update

    session = _poisonable_session(shards)
    good = [insert("R", value % 3) for value in range(10)] + [
        insert("W", "k1", 5),
        insert("W", "k2", 7),
    ]
    session.apply_batch(good)
    before_results = session.results()
    before_history = list(session._history)
    before_applied = session.updates_applied
    before_stats = {
        backend: (
            group.statistics.updates_processed,
            group.statistics.statements_executed,
            group.statistics.entries_updated,
        )
        for backend, group in session._groups.items()
    }
    payloads = []
    session["count"].on_change(lambda changes: payloads.append(changes))

    # 'x' * 3 inside the weighted view's fold raises TypeError after the pure
    # R-counts have already advanced some views.
    poisoned = [insert("R", 0), insert("W", "k1", "x"), insert("R", 1)]
    with pytest.raises(TypeError):
        session.apply_batch(poisoned)

    assert session.results() == before_results
    assert session._history == before_history
    assert session.updates_applied == before_applied
    assert payloads == []  # no CDC for a rolled-back batch
    # Work counters roll back too: a cancelled batch's partial work must not
    # leak into the statistics (including the generated module's pending ones).
    for backend, group in session._groups.items():
        assert (
            group.statistics.updates_processed,
            group.statistics.statements_executed,
            group.statistics.entries_updated,
        ) == before_stats[backend], backend
    # The session keeps working afterwards, indexes intact.
    session.apply_batch([insert("R", 0), Update(-1, "R", (0,)), insert("W", "k1", 2)])
    assert session["weighted"].result() == {("k1",): 7, ("k2",): 7}
    assert payloads == []  # the follow-up batch nets zero on R
    session.insert("R", 9)
    assert payloads == [{(): 1}]


def test_poisoned_single_update_on_engine_is_isolated():
    """Engine-backend state restores byte-for-byte after a failed batch."""
    schema = {"W": ("K", "V")}
    session = Session(schema)
    view = session.view("w", "AggSum([k], W(k, v) * v)", backend="classical")
    session.apply_batch([insert("W", "a", 1), insert("W", "b", 2)])
    before = view.result()
    with pytest.raises((TypeError, ValueError)):
        session.apply_batch([insert("W", "a", 1), insert("W", "c", "boom")])
    assert view.result() == before
    assert session._views["w"]._engine.db.size("W") == 2


# ---------------------------------------------------------------------------
# History stores the effective (coalesced) batch (PR 5)
# ---------------------------------------------------------------------------


def test_history_stores_effective_batch_not_churn():
    """Regression: _note_applied used to append the raw uncoalesced updates, so
    replays (late views, snapshots) re-executed cancelled churn."""
    from repro.gmr.database import Update

    session = Session({"R": ("A",)})
    session.view("q", "Sum(R(x))")
    churn = [insert("R", 1), Update(-1, "R", (1,))] * 500 + [insert("R", 2)] * 100
    session.apply_batch(churn)
    # The log holds the net batch: one compact update instead of 1100.
    assert session._history == [Update(1, "R", (2,), count=100)]
    # Counters still reflect the submitted updates.
    assert session.updates_applied == 1100
    # Late registration replays the effective history correctly.
    late = session.view("late", "Sum(R(x))", backend="interpreted")
    assert late.result() == 100


@pytest.mark.parametrize("backend", ["generated", "interpreted", "classical", "naive"])
def test_replay_equivalence_after_coalesced_history(backend):
    """snapshot -> restore (which replays nothing but trusts the maps) and a
    history-driven rebuild both agree with the live session."""
    from repro.gmr.database import Update

    rng = random.Random(11)
    session = Session({"R": ("A", "B")})
    view = session.view("q", "AggSum([a], R(a, b) * b)", backend=backend)
    for _ in range(8):
        batch = []
        for _ in range(rng.randint(1, 40)):
            values = (rng.randint(0, 3), rng.randint(0, 4))
            batch.append(Update(1 if rng.random() < 0.6 else -1, "R", values))
        session.apply_batch(batch)
    restored = Session.restore(session.snapshot())
    assert restored.results() == session.results()
    # Rebuild a fresh session purely from the stored history.
    replayed = Session({"R": ("A", "B")})
    replayed_view = replayed.view("q", "AggSum([a], R(a, b) * b)", backend=backend)
    replayed.apply_batch(session._history)
    assert result_as_mapping(replayed_view.result()) == result_as_mapping(view.result())
    # And the restored session's own history replays to the same state.
    assert restored._history == session._history
