"""Sharded map tables and parallel batch folds (PR 5).

The contract under test: for every shard count N, a sharded session/engine is
*indistinguishable* from the unsharded one — same view results, same
``on_change`` payloads, same replay/bootstrap behavior — and ``shards=1``
keeps plain dict tables (the pre-sharding code path).
"""

from __future__ import annotations

import random

import pytest

from repro.compiler.sharding import (
    MIN_PARALLEL_KEYS,
    ShardedMapTable,
    partition_map,
    resolve_shard_count,
    shard_of,
)
from repro.gmr.database import Update, insert
from repro.ivm.recursive import RecursiveIVM
from repro.session.session import Session
from repro.workloads.schemas import UNARY_SCHEMA

GROUPED_SCHEMA = {"R": ("A",), "S": ("A", "B")}

SHARD_COUNTS = (2, 3, 8)
COMPILED_BACKENDS = ("generated", "interpreted")


# ---------------------------------------------------------------------------
# The partitioner and the table facade
# ---------------------------------------------------------------------------


def test_shard_of_is_stable_and_in_range():
    for key in [(), (1,), ("a", 2), (None, "x", 3.5)]:
        for count in (1, 2, 7):
            shard = shard_of(key, count)
            assert 0 <= shard < count
            assert shard == shard_of(key, count)  # pure function of the key


def test_partition_map_is_a_disjoint_cover():
    mapping = {(i, i % 3): i for i in range(100)}
    parts = partition_map(mapping, 4)
    assert len(parts) == 4
    merged = {}
    for index, part in enumerate(parts):
        for key in part:
            assert shard_of(key, 4) == index
        merged.update(part)
    assert merged == mapping


def test_sharded_map_table_mapping_protocol():
    table = ShardedMapTable(3, {(i,): i * 10 for i in range(20)})
    assert len(table) == 20
    assert table[(4,)] == 40
    assert table.get((4,)) == 40
    assert table.get((99,), "default") == "default"
    assert (4,) in table and (99,) not in table
    table[(99,)] = 1
    assert table.pop((99,)) == 1
    assert table.pop((99,), None) is None
    with pytest.raises(KeyError):
        table.pop((99,))
    assert dict(table.items()) == {(i,): i * 10 for i in range(20)}
    assert dict(table) == {(i,): i * 10 for i in range(20)}
    assert set(table) == {(i,) for i in range(20)}
    assert sorted(table.values()) == sorted(i * 10 for i in range(20))
    assert table == {(i,): i * 10 for i in range(20)}
    assert table == ShardedMapTable(5, dict(table.items()))  # layout-independent
    assert table.copy() == dict(table.items())
    # The shards really partition the key space.
    for index, shard in enumerate(table.shards):
        for key in shard:
            assert shard_of(key, 3) == index
    table.clear()
    assert len(table) == 0 and not table


def test_resolve_shard_count_env_default(monkeypatch):
    monkeypatch.delenv("REPRO_SHARDS", raising=False)
    assert resolve_shard_count(None) == 1
    monkeypatch.setenv("REPRO_SHARDS", "4")
    assert resolve_shard_count(None) == 4
    assert resolve_shard_count(2) == 2  # explicit argument wins
    with pytest.raises(ValueError):
        resolve_shard_count(0)


def test_shards_1_keeps_plain_dict_tables():
    session = Session(UNARY_SCHEMA, shards=1)
    session.view("q", "Sum(R(x))", backend="generated")
    runtime = session._groups["generated"].runtime
    assert all(type(table) is dict for table in runtime.maps.values())
    sharded = Session(UNARY_SCHEMA, shards=2)
    sharded.view("q", "Sum(R(x))", backend="generated")
    runtime = sharded._groups["generated"].runtime
    assert all(type(table) is ShardedMapTable for table in runtime.maps.values())


def test_repro_shards_env_knob(monkeypatch):
    monkeypatch.setenv("REPRO_SHARDS", "3")
    session = Session(UNARY_SCHEMA)
    assert session.shards == 3
    session.view("q", "Sum(R(x) * R(y) * (x = y))", backend="generated")
    session.apply_batch([insert("R", value % 5) for value in range(100)])
    unsharded = Session(UNARY_SCHEMA, shards=1)
    unsharded.view("q", "Sum(R(x) * R(y) * (x = y))", backend="generated")
    unsharded.apply_batch([insert("R", value % 5) for value in range(100)])
    assert session["q"].result() == unsharded["q"].result()


# ---------------------------------------------------------------------------
# Engine-level equivalence (RecursiveIVM shards=N)
# ---------------------------------------------------------------------------


def _mixed_trace(rng, relations, length, domain):
    updates = []
    for _ in range(length):
        relation, arity = relations[rng.randrange(len(relations))]
        sign = 1 if rng.random() < 0.65 else -1
        values = tuple(rng.randint(0, domain) for _ in range(arity))
        updates.append(Update(sign, relation, values))
    return updates


@pytest.mark.parametrize("backend", COMPILED_BACKENDS)
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_sharded_engine_matches_unsharded(backend, shards):
    from repro.core.parser import parse

    query = parse("AggSum([a], S(a, b) * b)")
    rng = random.Random(shards * 17 + len(backend))
    base = RecursiveIVM(query, GROUPED_SCHEMA, backend=backend)
    sharded = RecursiveIVM(query, GROUPED_SCHEMA, backend=backend, shards=shards)
    for _ in range(6):
        batch = _mixed_trace(rng, [("S", 2)], rng.choice([5, 80, 300]), 60)
        base.apply_batch(batch)
        sharded.apply_batch(batch)
        assert sharded.result() == base.result()
    # Per-tuple application on sharded tables also agrees.
    for update in _mixed_trace(rng, [("S", 2)], 40, 60):
        base.apply(update)
        sharded.apply(update)
    assert sharded.result() == base.result()


@pytest.mark.parametrize("shards", (2, 4))
def test_sharded_bootstrap_matches_unsharded(shards):
    from repro.core.parser import parse
    from repro.gmr.database import Database

    query = parse("Sum(R(x) * R(y) * (x = y))")
    db = Database(schema=UNARY_SCHEMA)
    db.load("R", [(value % 7,) for value in range(50)])
    base = RecursiveIVM(query, UNARY_SCHEMA, backend="generated")
    sharded = RecursiveIVM(query, UNARY_SCHEMA, backend="generated", shards=shards)
    base.bootstrap(db)
    sharded.bootstrap(db)
    assert sharded.result() == base.result()
    for table in sharded.runtime.maps.values():
        assert type(table) is ShardedMapTable
    batch = [insert("R", value % 7) for value in range(200)]
    base.apply_batch(batch)
    sharded.apply_batch(batch)
    assert sharded.result() == base.result()


# ---------------------------------------------------------------------------
# The randomized session property: state- and CDC-equivalence at every N
# ---------------------------------------------------------------------------


VIEWS = {
    "selfjoin": "Sum(R(x) * R(y) * (x = y))",
    "gsum": "AggSum([a], S(a, b) * b)",
    "count": "Sum(S(a, b))",
}


def _build_session(shards, backend):
    session = Session(GROUPED_SCHEMA, shards=shards)
    views, cdc = {}, {name: [] for name in VIEWS}
    for name, query in VIEWS.items():
        views[name] = session.view(name, query, backend=backend)
        views[name].on_change(
            lambda changes, _name=name: cdc[_name].append(sorted(changes.items()))
        )
    return session, cdc


def _random_batch(rng, size, domain):
    batch = []
    for _ in range(size):
        if rng.random() < 0.4:
            batch.append(
                Update(1 if rng.random() < 0.7 else -1, "R", (rng.randint(0, domain),))
            )
        else:
            batch.append(
                Update(
                    1 if rng.random() < 0.7 else -1,
                    "S",
                    (rng.randint(0, domain), rng.randint(0, 9)),
                )
            )
    return batch


@pytest.mark.parametrize("backend", COMPILED_BACKENDS)
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_sharded_session_state_and_cdc_equivalent(backend, shards):
    """The acceptance property: a sharded session is indistinguishable from the
    unsharded one on mixed single/batch traces — results *and* CDC streams —
    including batches large enough to cross the parallel-fold threshold."""
    rng = random.Random(1000 * shards + len(backend))
    base, base_cdc = _build_session(1, backend)
    sharded, sharded_cdc = _build_session(shards, backend)
    for step in range(12):
        if rng.random() < 0.3:
            update = _random_batch(rng, 1, 40)[0]
            base.apply(update)
            sharded.apply(update)
        else:
            # Occasionally exceed MIN_PARALLEL_KEYS so the thread-pool path runs.
            size = rng.choice([3, 40, MIN_PARALLEL_KEYS * 4])
            batch = _random_batch(rng, size, 40)
            base.apply_batch(batch)
            sharded.apply_batch(batch)
        assert sharded.results() == base.results(), (backend, shards, step)
        assert sharded_cdc == base_cdc, (backend, shards, step)


@pytest.mark.parametrize("backend", COMPILED_BACKENDS)
def test_snapshot_restore_across_shard_counts(backend):
    """snapshot() at one shard count restores at any other, mid-trace, and the
    restored session keeps producing unsharded-identical results."""
    rng = random.Random(42)
    base, _ = _build_session(1, backend)
    sharded, _ = _build_session(3, backend)
    for _ in range(4):
        batch = _random_batch(rng, 50, 30)
        base.apply_batch(batch)
        sharded.apply_batch(batch)
    snapshot = sharded.snapshot()
    assert snapshot["shards"] == 3
    for new_count in (1, 2, 8):
        restored = Session.restore(snapshot, shards=new_count)
        assert restored.shards == new_count
        assert restored.results() == base.results()
        # The revived session must keep maintaining correctly at the new count.
        tail = _random_batch(random.Random(new_count), 80, 30)
        restored.apply_batch(tail)
        continued, _ = _build_session(1, backend)
        for update in base._history:
            continued.apply(update)
        continued.apply_batch(tail)
        assert restored.results() == continued.results()
    # Without an override the recorded count is used.
    assert Session.restore(snapshot).shards == 3


def test_late_view_registration_on_sharded_session():
    """A view registered after updates flowed bootstraps from the replayed
    history into sharded tables and is immediately consistent."""
    session = Session(GROUPED_SCHEMA, shards=4)
    session.view("count", "Sum(S(a, b))", backend="generated")
    session.apply_batch(
        [Update(1, "S", (value % 11, value % 5)) for value in range(150)]
    )
    late = session.view("gsum", "AggSum([a], S(a, b) * b)", backend="generated")
    reference = Session(GROUPED_SCHEMA, shards=1)
    ref_view = reference.view("gsum", "AggSum([a], S(a, b) * b)", backend="generated")
    reference.apply_batch(
        [Update(1, "S", (value % 11, value % 5)) for value in range(150)]
    )
    assert late.result() == ref_view.result()
    for table in session._groups["generated"].runtime.maps.values():
        assert type(table) is ShardedMapTable


# ---------------------------------------------------------------------------
# The partition tier: backend equivalence (inline / thread / process)
# ---------------------------------------------------------------------------


SHARD_BACKENDS = ("inline", "thread", "process")

#: A nested-aggregate view whose S-trigger carries a *tracked* recompute, so
#: traces through it exercise the backend's ``map_groups`` fan-out.
NESTED_SCHEMA = {"R": ("G", "X"), "S": ("G", "Y")}
NESTED_QUERY = "AggSum([g], R(g, x) * (x < Sum(S(g, y) * y)) * x)"


def _force_dispatch(session):
    """Lower the partition tier's thresholds so small test batches fan out."""
    for group in session._groups.values():
        if group.shard_backend is not None:
            group.shard_backend.min_parallel_keys = 4
            group.shard_backend.min_parallel_groups = 2
    return session


def _build_backend_session(shards, executor, shard_backend):
    session = Session(GROUPED_SCHEMA, shards=shards, shard_backend=shard_backend)
    cdc = {name: [] for name in VIEWS}
    for name, query in VIEWS.items():
        view = session.view(name, query, backend=executor)
        view.on_change(lambda changes, _name=name: cdc[_name].append(sorted(changes.items())))
    return _force_dispatch(session), cdc


@pytest.mark.parametrize("executor", COMPILED_BACKENDS)
@pytest.mark.parametrize("shard_backend", SHARD_BACKENDS)
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_every_backend_matches_unsharded_state_and_cdc(shards, shard_backend, executor):
    """The PR-8 acceptance property: every (N, backend, executor) combination
    is byte-identical to the unsharded session — results and CDC streams —
    with dispatch thresholds lowered so the real worker paths run."""
    rng = random.Random(7000 + 100 * shards + len(shard_backend) + len(executor))
    base, base_cdc = _build_session(1, executor)
    sharded, sharded_cdc = _build_backend_session(shards, executor, shard_backend)
    try:
        for step in range(6):
            if rng.random() < 0.25:
                update = _random_batch(rng, 1, 40)[0]
                base.apply(update)
                sharded.apply(update)
            else:
                batch = _random_batch(rng, rng.choice([3, 40, 120]), 40)
                base.apply_batch(batch)
                sharded.apply_batch(batch)
            assert sharded.results() == base.results(), (shards, shard_backend, executor, step)
            assert sharded_cdc == base_cdc, (shards, shard_backend, executor, step)
    finally:
        sharded.close()


@pytest.mark.parametrize("executor", COMPILED_BACKENDS)
@pytest.mark.parametrize("shard_backend", SHARD_BACKENDS)
def test_tracked_recomputes_dispatch_per_backend(shard_backend, executor):
    """Nested-aggregate maintenance (tracked recomputes) must agree with the
    unsharded engine when the affected-group loop fans out over each backend."""
    rng = random.Random(31 + len(shard_backend) + len(executor))
    base = Session(NESTED_SCHEMA, shards=1)
    base.view("nested", NESTED_QUERY, backend=executor)
    sharded = Session(NESTED_SCHEMA, shards=4, shard_backend=shard_backend)
    sharded.view("nested", NESTED_QUERY, backend=executor)
    _force_dispatch(sharded)
    try:
        for step in range(5):
            batch = []
            for _ in range(rng.choice([8, 60])):
                relation = "R" if rng.random() < 0.5 else "S"
                batch.append(
                    Update(
                        1 if rng.random() < 0.7 else -1,
                        relation,
                        (rng.randint(0, 12), rng.randint(0, 20)),
                    )
                )
            base.apply_batch(batch)
            sharded.apply_batch(batch)
            assert sharded.results() == base.results(), (shard_backend, executor, step)
    finally:
        sharded.close()


@pytest.mark.parametrize("executor", COMPILED_BACKENDS)
def test_snapshot_restore_across_backends_and_shard_counts(executor):
    """A snapshot taken under one (N, backend) revives under any other —
    including process→thread→inline — and keeps maintaining correctly."""
    rng = random.Random(99)
    origin, _ = _build_backend_session(3, executor, "process")
    base, _ = _build_session(1, executor)
    try:
        for _ in range(3):
            batch = _random_batch(rng, 60, 30)
            origin.apply_batch(batch)
            base.apply_batch(batch)
        snapshot = origin.snapshot()
        assert snapshot["shards"] == 3
        assert snapshot["shard_backend"] == "process"
    finally:
        origin.close()
    for new_count, new_backend in ((1, None), (2, "inline"), (4, "thread"), (2, "process")):
        restored = Session.restore(snapshot, shards=new_count, shard_backend=new_backend)
        _force_dispatch(restored)
        try:
            assert restored.shards == new_count
            if new_backend is not None and new_count > 1:
                assert restored.shard_backend == new_backend
            assert restored.results() == base.results()
            tail = _random_batch(random.Random(new_count), 80, 30)
            restored.apply_batch(tail)
            continued, _ = _build_session(1, executor)
            for update in base._history:
                continued.apply(update)
            continued.apply_batch(tail)
            assert restored.results() == continued.results()
        finally:
            restored.close()
    # Without an override the recorded backend is used.
    assert Session.restore(snapshot).shard_backend == "process"


def test_process_backend_transactional_rollback():
    """A poisoned batch through the process backend rolls back exactly like
    the unsharded path, and the workers resync from the restored tables."""
    session = Session(GROUPED_SCHEMA, shards=4, shard_backend="process")
    session.view("gsum", "AggSum([a], S(a, b) * b)", backend="generated")
    _force_dispatch(session)
    try:
        session.apply_batch([Update(1, "S", (value % 9, value % 5)) for value in range(120)])
        before = session["gsum"].result_mapping()
        poisoned = [Update(1, "S", (value % 9, value % 5)) for value in range(40)]
        poisoned.append(Update(1, "S", (1, "boom")))
        with pytest.raises(Exception):
            session.apply_batch(poisoned)
        assert session["gsum"].result_mapping() == before
        # The backend keeps serving correct folds after the rollback.
        session.apply_batch([Update(1, "S", (value % 9, value % 5)) for value in range(80)])
        reference = Session(GROUPED_SCHEMA, shards=1)
        reference.view("gsum", "AggSum([a], S(a, b) * b)", backend="generated")
        reference.apply_batch([Update(1, "S", (value % 9, value % 5)) for value in range(120)])
        reference.apply_batch([Update(1, "S", (value % 9, value % 5)) for value in range(80)])
        assert session["gsum"].result_mapping() == reference["gsum"].result_mapping()
    finally:
        session.close()


def test_process_backend_ingest_pipeline():
    """The streaming ingestion flusher drives the process backend correctly."""
    session = Session(GROUPED_SCHEMA, shards=4, shard_backend="process")
    session.view("gsum", "AggSum([a], S(a, b) * b)", backend="generated")
    _force_dispatch(session)
    reference = Session(GROUPED_SCHEMA, shards=1)
    reference.view("gsum", "AggSum([a], S(a, b) * b)", backend="generated")
    rng = random.Random(5)
    updates = [
        Update(
            1 if rng.random() < 0.75 else -1,
            "S",
            (rng.randint(0, 25), rng.randint(0, 9)),
        )
        for _ in range(400)
    ]
    try:
        with session.ingest(max_pending=1_000_000, max_staleness_ms=None) as pipe:
            for index, update in enumerate(updates):
                pipe.submit(update)
                if index % 150 == 149:
                    pipe.flush()
        reference.apply_all(updates)
        assert session["gsum"].result_mapping() == reference["gsum"].result_mapping()
    finally:
        session.close()


def test_backend_env_knob(monkeypatch):
    from repro.compiler.partition.backends import (
        InlineShardBackend,
        ProcessShardBackend,
        ThreadShardBackend,
        default_shard_backend,
    )

    monkeypatch.delenv("REPRO_SHARD_BACKEND", raising=False)
    assert default_shard_backend() == "thread"
    monkeypatch.setenv("REPRO_SHARD_BACKEND", "inline")
    assert default_shard_backend() == "inline"
    session = Session(GROUPED_SCHEMA, shards=2)
    session.view("count", "Sum(S(a, b))", backend="generated")
    assert isinstance(session._groups["generated"].shard_backend, InlineShardBackend)
    monkeypatch.setenv("REPRO_SHARD_BACKEND", "process")
    explicit = Session(GROUPED_SCHEMA, shards=2, shard_backend="thread")
    explicit.view("count", "Sum(S(a, b))", backend="generated")
    assert isinstance(explicit._groups["generated"].shard_backend, ThreadShardBackend)
    implicit = Session(GROUPED_SCHEMA, shards=2)
    implicit.view("count", "Sum(S(a, b))", backend="generated")
    assert isinstance(implicit._groups["generated"].shard_backend, ProcessShardBackend)
    implicit.close()
    with pytest.raises(ValueError):
        Session(GROUPED_SCHEMA, shards=2, shard_backend="bogus")


def test_worker_death_raises_clean_error():
    """A killed worker surfaces as a RuntimeError, not a hang or corruption."""
    from repro.compiler.partition.backends import ProcessShardBackend
    from repro.algebra.semirings import INTEGER_RING
    from repro.compiler.indexes import SliceIndexes
    from repro.compiler.sharding import make_inline_shard_fold, make_shard_fold

    # Pin static dispatch: this test probes the process-worker machinery, so
    # the fold must actually take the worker path regardless of the
    # REPRO_SHARD_DISPATCH environment.
    backend = ProcessShardBackend(2, INTEGER_RING, min_parallel_keys=1, dispatch="static")
    table = ShardedMapTable(2, {(i,): 1 for i in range(10)})
    table.backend = backend
    indexes = SliceIndexes()
    sink = lambda added, removed: indexes  # noqa: E731 - journal ignored here
    fold = make_shard_fold(INTEGER_RING)
    inline = make_inline_shard_fold(INTEGER_RING)
    try:
        backend.fold_table(table, {(i,): 1 for i in range(10)}, False, fold, inline, None, name="m")
        assert table == {(i,): 2 for i in range(10)}
        for process, _conn in backend._workers:
            process.terminate()
            process.join()
        with pytest.raises(RuntimeError, match="worker"):
            backend.fold_table(
                table, {(i,): 1 for i in range(10)}, False, fold, inline, None, name="m"
            )
    finally:
        backend.close()


# ---------------------------------------------------------------------------
# Cost-adaptive dispatch (PR 9): the knob, the model, and the equivalence
# ---------------------------------------------------------------------------


def test_dispatch_env_knob(monkeypatch):
    from repro.algebra.semirings import INTEGER_RING
    from repro.compiler.partition.backends import make_shard_backend
    from repro.compiler.partition.dispatch import (
        AdaptiveDispatch,
        StaticDispatch,
        default_dispatch,
        make_dispatch_policy,
        resolve_dispatch,
    )

    monkeypatch.delenv("REPRO_SHARD_DISPATCH", raising=False)
    assert default_dispatch() == "static"
    monkeypatch.setenv("REPRO_SHARD_DISPATCH", "adaptive")
    assert default_dispatch() == "adaptive"
    implicit = make_shard_backend("thread", 2, INTEGER_RING)
    assert isinstance(implicit.dispatch, AdaptiveDispatch)
    explicit = make_shard_backend("thread", 2, INTEGER_RING, dispatch="static")
    assert isinstance(explicit.dispatch, StaticDispatch)
    # A ready policy instance passes through, so a session can share one
    # learned model across runtime rebuilds.
    shared = AdaptiveDispatch()
    assert make_dispatch_policy(shared) is shared
    with pytest.raises(ValueError):
        resolve_dispatch("bogus")


def test_adaptive_choose_prices_then_tracks_cost():
    """Cold modes are probed round-robin until priced; afterwards the cheapest
    predicted mode wins, and the decayed fit re-learns a drifting host."""
    from repro.compiler.partition.dispatch import AdaptiveDispatch

    policy = AdaptiveDispatch(min_samples=2.0, explore_every=0)
    modes = ("inline", "thread")
    probed = [policy.choose("m", 100, modes) for _ in range(4)]
    assert set(probed) == {"inline", "thread"}
    for _ in range(4):
        policy.observe("m", "inline", 100, 0.001)
        policy.observe("m", "thread", 100, 0.010)
    assert policy.choose("m", 100, modes) == "inline"
    for _ in range(12):
        policy.observe("m", "inline", 100, 0.010)
        policy.observe("m", "thread", 100, 0.001)
    assert policy.choose("m", 100, modes) == "thread"
    snapshot = policy.snapshot()
    assert snapshot["policy"] == "adaptive"
    assert "m/inline" in snapshot["models"] and "m/thread" in snapshot["models"]


def test_adaptive_choose_scales_with_batch_size():
    """The fit is linear in the key count, so a mode with high fixed cost but
    a flat slope wins the big batches while losing the small ones."""
    from repro.compiler.partition.dispatch import AdaptiveDispatch

    policy = AdaptiveDispatch(min_samples=1.0, explore_every=0)
    modes = ("inline", "thread")
    # inline: no fixed cost, 1us/key.  thread: 500us fixed, 0.1us/key.
    for keys in (100, 2_000, 100, 2_000):
        policy.observe("m", "inline", keys, keys * 1e-6)
        policy.observe("m", "thread", keys, 5e-4 + keys * 1e-7)
    assert policy.choose("m", 50, modes) == "inline"
    assert policy.choose("m", 10_000, modes) == "thread"


@pytest.mark.parametrize("executor", COMPILED_BACKENDS)
@pytest.mark.parametrize("shard_backend", SHARD_BACKENDS)
def test_adaptive_dispatch_equivalent_to_static(monkeypatch, shard_backend, executor):
    """The PR-9 acceptance property: under ``REPRO_SHARD_DISPATCH=adaptive``
    the PR-8 byte-identical guarantee still holds — same results and CDC
    streams as the unsharded session — while the dispatcher records real
    decisions into the session statistics."""
    monkeypatch.setenv("REPRO_SHARD_DISPATCH", "adaptive")
    rng = random.Random(9000 + 10 * len(shard_backend) + len(executor))
    base, base_cdc = _build_session(1, executor)
    sharded, sharded_cdc = _build_backend_session(4, executor, shard_backend)
    try:
        for step in range(6):
            if rng.random() < 0.25:
                update = _random_batch(rng, 1, 40)[0]
                base.apply(update)
                sharded.apply(update)
            else:
                batch = _random_batch(rng, rng.choice([3, 40, 120]), 40)
                base.apply_batch(batch)
                sharded.apply_batch(batch)
            assert sharded.results() == base.results(), (shard_backend, executor, step)
            assert sharded_cdc == base_cdc, (shard_backend, executor, step)
        report = sharded.dispatch_statistics()
        assert report[executor]["policy"] == "adaptive"
        decisions = report[executor]["decisions"]
        assert sum(decisions.values()) > 0
        assert sharded.statistics.extra["shard_dispatch"] == report
    finally:
        sharded.close()


def test_ingest_stats_surface_dispatch_decisions(monkeypatch):
    """The streaming flusher refreshes the dispatch report after each flush,
    so the monitoring snapshot shows where the folds actually ran."""
    monkeypatch.setenv("REPRO_SHARD_DISPATCH", "adaptive")
    session = Session(GROUPED_SCHEMA, shards=2, shard_backend="thread")
    session.view("gsum", "AggSum([a], S(a, b) * b)", backend="generated")
    _force_dispatch(session)
    try:
        with session.ingest(max_pending=1_000_000, max_staleness_ms=None) as pipe:
            for value in range(300):
                pipe.submit(Update(1, "S", (value % 13, value % 7)))
                if value % 100 == 99:
                    pipe.flush()
            snapshot = pipe.stats.snapshot()
        dispatch = snapshot["shard_dispatch"]
        assert dispatch["generated"]["policy"] == "adaptive"
        assert sum(dispatch["generated"]["decisions"].values()) > 0
    finally:
        session.close()


# ---------------------------------------------------------------------------
# Failure path: a failed fold must leave the slice indexes consistent
# ---------------------------------------------------------------------------


class _FragileRing:
    """A duck-typed coefficient structure whose add chokes on 'boom'."""

    zero = 0

    @staticmethod
    def add(left, right):
        if right == "boom":
            raise RuntimeError("poisoned delta")
        return left + right

    @staticmethod
    def is_zero(value):
        return value == 0


@pytest.mark.parametrize("size", [10, MIN_PARALLEL_KEYS * 4])
def test_failed_fold_applies_completed_journals(size):
    """Workers hand their journals back even when one raises: after a failed
    fold (inline or parallel), the slice indexes must exactly match the
    tables' actual contents — the unsharded per-key loop's guarantee."""
    from repro.compiler.indexes import SliceIndexes
    from repro.compiler.sharding import (
        fold_sharded_table,
        make_inline_shard_fold,
        make_shard_fold,
    )

    ring = _FragileRing()
    table = ShardedMapTable(4, {(i, i): 1 for i in range(5)})
    indexes = SliceIndexes({"m": [(0,)]})
    indexes.rebuild({"m": table})
    acc = {(i, i): 1 for i in range(size)}
    acc[(3, 3)] = "boom"
    with pytest.raises(RuntimeError):
        fold_sharded_table(
            table,
            acc,
            True,
            make_shard_fold(ring),
            make_inline_shard_fold(ring),
            lambda added, removed: indexes.apply_journal("m", added, removed),
        )
    indexed = set()
    for bucket in indexes.data.values():
        for keys in bucket.values():
            indexed.update(keys)
    assert indexed == set(table), "slice indexes diverged from table contents"
