"""Hot-loop batch specialization (PR 9).

The contract under test: with ``specialize=True`` (the default) both compiled
executors fold eligible Z-ring batches through statically-unrolled fast paths
— fused scalar totals for bare counts, ``collections.Counter`` grouping for
everything else — and are *indistinguishable* from the generic
(pre-specialization) path: same states, same results, same ``on_change``
payloads, same errors.  Ineligible programs (non-integer rings, too many
trigger events) silently keep the generic path.
"""

from __future__ import annotations

import random

import pytest

from repro.algebra.semirings import FLOAT_FIELD
from repro.compiler.cost import (
    MAX_SPECIALIZED_EVENTS,
    batch_specialization_class,
    specialization_enabled,
    trigger_specialization,
)
from repro.core.parser import parse
from repro.gmr.database import Update
from repro.ivm.recursive import RecursiveIVM

COMPILED_BACKENDS = ("generated", "interpreted")

#: name -> (query text, schema, expected per-event codegen specializations).
#: ``count`` compiles to all-total triggers (no delta table at all), the rest
#: go through the Counter-built grouping path.
QUERIES = {
    "count": ("Sum(R(x))", {"R": ("A",)}, "total"),
    "group_count": ("AggSum([a], R(a, b))", {"R": ("A", "B")}, "counter"),
    "group_sum": ("AggSum([a], R(a, b) * b)", {"R": ("A", "B")}, "counter"),
    "selfjoin": ("Sum(R(x) * R(y) * (x = y))", {"R": ("A",)}, "counter"),
    "join": (
        "AggSum([a], R(a, b) * S(b, c) * c)",
        {"R": ("A", "B"), "S": ("B", "C")},
        "counter",
    ),
}

#: Three relations x two signs = six trigger events > MAX_SPECIALIZED_EVENTS,
#: so this program must fall back to the generic single-pass grouping loop.
WIDE_QUERY = "Sum(R(x) * S(x) * T(x))"
WIDE_SCHEMA = {"R": ("A",), "S": ("A",), "T": ("A",)}


def _random_trace(rng, schema, length, domain=9):
    relations = [(name, len(columns)) for name, columns in schema.items()]
    updates = []
    for _ in range(length):
        relation, arity = relations[rng.randrange(len(relations))]
        sign = 1 if rng.random() < 0.7 else -1
        values = tuple(rng.randint(0, domain) for _ in range(arity))
        # Mix compact (count > 1) updates in so the specialized slices hit
        # their multiplicity-expansion branches.
        count = rng.choice([1, 1, 1, 3])
        updates.append(Update(sign, relation, values, count))
    return updates


def _engines(name, backend, specialize):
    text, schema, _ = QUERIES[name]
    engine = RecursiveIVM(parse(text), schema, backend=backend, specialize=specialize)
    cdc = []
    engine.on_change(lambda changes: cdc.append(sorted(changes.items())))
    return engine, cdc


@pytest.mark.parametrize("backend", COMPILED_BACKENDS)
@pytest.mark.parametrize("name", sorted(QUERIES))
def test_specialized_matches_generic_state_and_cdc(name, backend):
    """The acceptance property: on mixed per-tuple/batched traces with compact
    multiplicities, the specialized executor is byte-identical to the generic
    one — results, full map states, and CDC payloads — including across a
    snapshot/restore taken mid-trace."""
    rng = random.Random(hash((name, backend)) & 0xFFFF)
    _, schema, _ = QUERIES[name]
    generic, generic_cdc = _engines(name, backend, specialize=False)
    special, special_cdc = _engines(name, backend, specialize=True)
    snapshots = None
    for step in range(10):
        if rng.random() < 0.3:
            update = _random_trace(rng, schema, 1)[0]
            generic.apply(update)
            special.apply(update)
        else:
            batch = _random_trace(rng, schema, rng.choice([4, 60, 150]))
            generic.apply_batch(batch)
            special.apply_batch(batch)
        assert special.result() == generic.result(), (name, backend, step)
        assert special_cdc == generic_cdc, (name, backend, step)
        assert special.runtime.maps == generic.runtime.maps, (name, backend, step)
        if step == 4:
            snapshots = (generic.state_backup(), special.state_backup())
    generic.state_restore(snapshots[0])
    special.state_restore(snapshots[1])
    tail = _random_trace(random.Random(7), schema, 120)
    generic.apply_batch(tail)
    special.apply_batch(tail)
    assert special.result() == generic.result()
    assert special.runtime.maps == generic.runtime.maps


@pytest.mark.parametrize("backend", COMPILED_BACKENDS)
def test_specialized_batch_equals_per_tuple_replay(backend):
    """Folding one batch specialized equals applying its tuples one at a time."""
    for name, (text, schema, _) in QUERIES.items():
        trace = _random_trace(random.Random(len(name)), schema, 200)
        batched = RecursiveIVM(parse(text), schema, backend=backend, specialize=True)
        batched.apply_batch(trace)
        sequential = RecursiveIVM(parse(text), schema, backend=backend, specialize=True)
        sequential.apply_all(trace)
        assert batched.result() == sequential.result(), (name, backend)


def test_codegen_reports_specialization_classes():
    """The generated module exposes its per-event verdicts, and explain()
    labels every batch statement with its specialization class."""
    for name, (text, schema, expected) in QUERIES.items():
        engine = RecursiveIVM(parse(text), schema, backend="generated", specialize=True)
        verdicts = engine._generated.specializations
        assert verdicts, name
        assert all(verdict == expected for verdict in verdicts.values()), (name, verdicts)
        assert "[spec:" in engine.explain(), name
    disabled = RecursiveIVM(
        parse(QUERIES["count"][0]), QUERIES["count"][1],
        backend="generated", specialize=False,
    )
    assert disabled._generated.specializations == {}


def test_specialization_classes_in_cost_model():
    """The static classifier distinguishes fused totals from bare counts that
    an unfusable event pins to the generic path."""
    engine = RecursiveIVM(parse("Sum(R(x))"), {"R": ("A",)}, specialize=True)
    for trigger in engine.program.batch_triggers.values():
        assert trigger_specialization(trigger) == "total"
        for statement in trigger.statements:
            assert batch_specialization_class(statement, trigger) == "fused-total"
    joined = RecursiveIVM(
        parse("AggSum([a], R(a, b) * S(b, c) * c)"),
        {"R": ("A", "B"), "S": ("B", "C")},
        specialize=True,
    )
    classes = {
        batch_specialization_class(statement, trigger)
        for trigger in joined.program.batch_triggers.values()
        for statement in trigger.statements
    }
    assert "generic" in classes or "fused-copy" in classes or "fused-marginal" in classes
    # A bare-count statement outside an all-total trigger is the lint shape.
    bare = next(
        statement
        for trigger in engine.program.batch_triggers.values()
        for statement in trigger.statements
    )
    assert batch_specialization_class(bare, trigger=None) == "generic-bare-count"


@pytest.mark.parametrize("backend", COMPILED_BACKENDS)
def test_wide_programs_fall_back_to_generic(backend):
    """Past MAX_SPECIALIZED_EVENTS trigger events the unrolled slices would
    walk the batch too often: both executors keep the generic loop — and the
    results still match a narrow reference trace."""
    engine = RecursiveIVM(parse(WIDE_QUERY), WIDE_SCHEMA, backend=backend, specialize=True)
    events = len(engine.program.triggers)
    assert events > MAX_SPECIALIZED_EVENTS
    if backend == "generated":
        assert engine._generated.specializations == {}
        assert "def apply_batch" in engine._generated.source
    else:
        assert engine.runtime._batch_plan() is False
    generic = RecursiveIVM(parse(WIDE_QUERY), WIDE_SCHEMA, backend=backend, specialize=False)
    trace = _random_trace(random.Random(3), WIDE_SCHEMA, 250, domain=5)
    engine.apply_batch(trace)
    generic.apply_batch(trace)
    assert engine.result() == generic.result()


@pytest.mark.parametrize("backend", COMPILED_BACKENDS)
def test_non_integer_rings_stay_generic(backend):
    """Specialization is gated on the Z ring: the float field keeps the
    generic path (its accumulation order is pinned) yet still computes."""
    engine = RecursiveIVM(
        parse("AggSum([a], R(a, b) * b)"), {"R": ("A", "B")},
        ring=FLOAT_FIELD, backend=backend, specialize=True,
    )
    if backend == "generated":
        assert engine._generated.specializations == {}
    engine.apply_batch([Update(1, "R", (1, 2.5)), Update(1, "R", (1, 0.5)), Update(-1, "R", (2, 1.0))])
    assert engine.result() == {(1,): 3.0, (2,): -1.0}


@pytest.mark.parametrize("backend", COMPILED_BACKENDS)
def test_arity_error_parity(backend):
    """A malformed tuple produces the identical outcome on both paths: the
    interpreted runtime raises the same error (before any state changed —
    poisoned batches stay atomic), the generated module tolerates it the same
    way the generic path always has."""
    text, schema, _ = QUERIES["group_sum"]
    good = [Update(1, "R", (value % 5, value % 3)) for value in range(40)]
    poisoned = good + [Update(1, "R", (1, 2, 3))] + good
    outcomes = {}
    for specialize in (False, True):
        engine = RecursiveIVM(parse(text), schema, backend=backend, specialize=specialize)
        engine.apply_batch(good)
        before = engine.state_backup()
        try:
            engine.apply_batch(poisoned)
        except Exception as error:
            outcomes[specialize] = (type(error), str(error))
            # Validation happens before any fold: the failed batch must not
            # have moved the state.
            assert engine.state_backup() == before, specialize
        else:
            outcomes[specialize] = ("ok", engine.state_backup())
    assert outcomes[False] == outcomes[True]
    if backend == "interpreted":
        assert outcomes[True][0] is not str and outcomes[True][0] != "ok"


def test_specialize_env_knob(monkeypatch):
    monkeypatch.delenv("REPRO_SPECIALIZE", raising=False)
    assert specialization_enabled(None) is True
    monkeypatch.setenv("REPRO_SPECIALIZE", "0")
    assert specialization_enabled(None) is False
    assert specialization_enabled(True) is True  # explicit argument wins
    engine = RecursiveIVM(parse("Sum(R(x))"), {"R": ("A",)}, backend="generated")
    assert engine._generated.specializations == {}
    monkeypatch.setenv("REPRO_SPECIALIZE", "1")
    engine = RecursiveIVM(parse("Sum(R(x))"), {"R": ("A",)}, backend="generated")
    assert engine._generated.specializations


# ---------------------------------------------------------------------------
# Kahan-compensated fused float totals (PR 10)
# ---------------------------------------------------------------------------


def test_float_all_total_programs_fuse_with_kahan_compensation():
    """The float field no longer keeps the generic path just to pin
    accumulation order: an all-total program fuses, with a per-target Kahan
    compensation term making the fused sum *more* accurate, not less."""
    engine = RecursiveIVM(
        parse("Sum(R(x))"), {"R": ("A",)},
        ring=FLOAT_FIELD, backend="generated", specialize=True,
    )
    assert "_KC" in engine.generated_source()
    assert engine._generated.specializations


def test_kahan_fused_totals_accuracy_no_worse_than_fsum():
    """A float total sitting at 1e16 absorbs 1000 single-tuple batches: plain
    ``+=`` drops every increment (the ulp at 1e16 is 2.0), ``math.fsum`` over
    the same contributions keeps them all — the Kahan path must match fsum."""
    import math

    from repro.compiler.codegen import generate_python
    from repro.compiler.compile import compile_query
    from repro.gmr.database import insert

    program = compile_query(parse("Sum(R(x))"), {"R": ("A",)}, name="q")
    kahan = generate_python(program, ring=FLOAT_FIELD, specialize=True)
    generic = generate_python(program, ring=FLOAT_FIELD, specialize=False)
    contributions = [1e16] + [1.0] * 1000
    exact = math.fsum(contributions)
    results = {}
    for label, generated in (("kahan", kahan), ("generic", generic)):
        maps = {name: {} for name in program.maps}
        maps["q"][()] = 1e16
        for step in range(1000):
            generated.apply_batch(maps, [insert("R", step)])
        results[label] = maps["q"][()]
    assert results["generic"] == 1e16  # the baseline really does lose the tail
    assert abs(results["kahan"] - exact) <= abs(results["generic"] - exact)
    assert results["kahan"] == exact


def test_kahan_compensation_resets_with_the_tables():
    """``reset_compensation`` clears the carried low-order bits, so a restore
    to wholly different tables does not replay a stale compensation term."""
    from repro.compiler.codegen import generate_python
    from repro.compiler.compile import compile_query
    from repro.gmr.database import insert

    program = compile_query(parse("Sum(R(x))"), {"R": ("A",)}, name="q")
    generated = generate_python(program, ring=FLOAT_FIELD, specialize=True)
    maps = {name: {} for name in program.maps}
    maps["q"][()] = 1e16
    generated.apply_batch(maps, [insert("R", 0)])
    generated.reset_compensation()
    fresh = {name: {} for name in program.maps}
    generated.apply_batch(fresh, [insert("R", 1), insert("R", 2)])
    assert fresh["q"][()] == 2.0
