"""Tests for the SQL-subset frontend (Section 5: from SQL to the calculus)."""

import pytest

from repro.core.ast import AggSum
from repro.core.degree import degree
from repro.core.errors import ParseError
from repro.core.parser import parse, to_string
from repro.core.semantics import evaluate
from repro.gmr.records import EMPTY_RECORD
from repro.ivm.comparison import cross_validate
from repro.sql.frontend import parse_sql, sql_to_agca
from repro.workloads.schemas import CUSTOMER_SCHEMA, RST_SCHEMA, SALES_SCHEMA, UNARY_SCHEMA
from repro.workloads.streams import StreamGenerator


def test_parse_sql_clauses():
    parsed = parse_sql(
        "SELECT c.nation, SUM(l.price) FROM Customer c, Lineitem l "
        "WHERE c.ck = l.ok2 AND l.qty > 2 GROUP BY c.nation;"
    )
    assert parsed.select_groups == ["c.nation"]
    assert parsed.aggregate.upper().startswith("SUM")
    assert parsed.tables == [("Customer", "c"), ("Lineitem", "l")]
    assert len(parsed.conditions) == 2
    assert parsed.group_by == ["c.nation"]
    assert parsed.aliases() == {"c": "Customer", "l": "Lineitem"}


def test_parse_sql_supports_as_and_bare_tables():
    parsed = parse_sql("SELECT COUNT(*) FROM R AS r1, R")
    assert parsed.tables == [("R", "r1"), ("R", "R")]


def test_count_star_translation(unary_db):
    query = sql_to_agca("SELECT COUNT(*) FROM R", UNARY_SCHEMA)
    assert isinstance(query, AggSum)
    assert degree(query) == 1
    assert evaluate(query, unary_db)[EMPTY_RECORD] == 3


def test_example_1_2_sql(unary_db):
    query = sql_to_agca("SELECT COUNT(*) FROM R r1, R r2 WHERE r1.A = r2.A", UNARY_SCHEMA)
    assert evaluate(query, unary_db)[EMPTY_RECORD] == 5


def test_example_5_2_sql(customers_db):
    query = sql_to_agca(
        "SELECT C1.cid, SUM(1) FROM C C1, C C2 WHERE C1.nation = C2.nation GROUP BY C1.cid",
        CUSTOMER_SCHEMA,
    )
    result = evaluate(query, customers_db)
    per_customer = {record["C1_cid"]: value for record, value in result.items()}
    assert per_customer == {1: 2, 2: 2, 3: 1, 4: 3, 5: 3, 6: 3}


def test_example_1_3_sql(rst_db):
    sql = "SELECT SUM(r.A * t.F) FROM R r, S s, T t WHERE r.B = s.C AND s.D = t.E"
    query = sql_to_agca(sql, RST_SCHEMA)
    agca = parse("Sum(R(a, b) * S(c, d) * T(e, f) * (b = c) * (d = e) * a * f)")
    assert evaluate(query, rst_db) == evaluate(agca, rst_db)


def test_where_with_constants_and_inequalities(customers_db):
    query = sql_to_agca(
        "SELECT COUNT(*) FROM C WHERE nation = 'JAPAN'", CUSTOMER_SCHEMA
    )
    assert evaluate(query, customers_db)[EMPTY_RECORD] == 3
    query_ge = sql_to_agca("SELECT COUNT(*) FROM C WHERE cid >= 4", CUSTOMER_SCHEMA)
    assert evaluate(query_ge, customers_db)[EMPTY_RECORD] == 3


def test_sum_of_arithmetic_expression(rst_db):
    query = sql_to_agca("SELECT SUM(A + B) FROM R", RST_SCHEMA)
    assert evaluate(query, rst_db)[EMPTY_RECORD] == (1 + 10) + (2 + 10) + (3 + 20)


def test_translated_queries_are_compilable_and_maintainable():
    sql = (
        "SELECT c.nation, SUM(l.price * l.qty) FROM Customer c, Orders o, Lineitem l "
        "WHERE c.ck = o.ck AND o.ok = l.ok2 GROUP BY c.nation"
    )
    query = sql_to_agca(sql, SALES_SCHEMA)
    stream = StreamGenerator(SALES_SCHEMA, seed=31, default_domain_size=5).generate(90)
    assert cross_validate(query, SALES_SCHEMA, stream.updates, check_every=30) is None


def test_unqualified_columns_resolve_when_unambiguous():
    query = sql_to_agca(
        "SELECT nation, SUM(1) FROM Customer GROUP BY nation", SALES_SCHEMA
    )
    assert query.group_vars == ("nation",)


def test_error_cases():
    with pytest.raises(ParseError):
        parse_sql("DELETE FROM R")
    with pytest.raises(ParseError):
        parse_sql("SELECT A FROM R")  # no aggregate
    with pytest.raises(ParseError):
        parse_sql("SELECT SUM(A), SUM(B) FROM R")  # two aggregates
    with pytest.raises(ParseError):
        sql_to_agca("SELECT COUNT(*) FROM Unknown", UNARY_SCHEMA)
    with pytest.raises(ParseError):
        sql_to_agca("SELECT COUNT(*) FROM R WHERE A LIKE 'x'", UNARY_SCHEMA)
    with pytest.raises(ParseError):
        sql_to_agca("SELECT COUNT(*) FROM R r1, R r2 WHERE A = 1", UNARY_SCHEMA)  # ambiguous
    with pytest.raises(ParseError):
        sql_to_agca("SELECT COUNT(cid) FROM C", CUSTOMER_SCHEMA)  # only COUNT(*)
    with pytest.raises(ParseError):
        sql_to_agca("SELECT COUNT(*) FROM C WHERE unknown = 1", CUSTOMER_SCHEMA)
    with pytest.raises(ParseError):
        parse_sql("SELECT COUNT(*) FROM R one two three")


def test_to_string_of_translation_is_parseable():
    query = sql_to_agca(
        "SELECT C1.cid, SUM(1) FROM C C1, C C2 WHERE C1.nation = C2.nation GROUP BY C1.cid",
        CUSTOMER_SCHEMA,
    )
    assert parse(to_string(query)) == query


# ---------------------------------------------------------------------------
# Arithmetic associativity (regression: SUM(a - b - c) parsed right-associative)
# ---------------------------------------------------------------------------


def _scalar_sum(sql, rows):
    """Evaluate a single-relation SUM over the given R(a, b, c) rows."""
    from repro.gmr.database import Database, insert

    schema = {"R": ("a", "b", "c")}
    db = Database(schema=schema)
    for row in rows:
        db.apply(insert("R", *row))
    query = sql_to_agca(sql, schema)
    return evaluate(query, db)[EMPTY_RECORD]


def test_chained_subtraction_is_left_associative():
    # 10 - 3 - 2 must be 5, not 10 - (3 - 2) = 9.
    assert _scalar_sum("SELECT SUM(a - b - c) FROM R", [(10, 3, 2)]) == 5


def test_mixed_additive_operators_are_left_associative():
    assert _scalar_sum("SELECT SUM(a - b + c) FROM R", [(10, 3, 2)]) == 9
    assert _scalar_sum("SELECT SUM(a + b - c) FROM R", [(10, 3, 2)]) == 11


def test_multiplication_binds_tighter_than_addition():
    assert _scalar_sum("SELECT SUM(a + b * c) FROM R", [(10, 3, 2)]) == 16
    assert _scalar_sum("SELECT SUM(a - b * c) FROM R", [(10, 3, 2)]) == 4
    assert _scalar_sum("SELECT SUM((a - b) * c) FROM R", [(10, 3, 2)]) == 14
    assert _scalar_sum("SELECT SUM(a * b - c) FROM R", [(10, 3, 2)]) == 28


# ---------------------------------------------------------------------------
# Scalar subqueries in WHERE and the HAVING clause (nested aggregates)
# ---------------------------------------------------------------------------


def test_parse_sql_having_clause():
    parsed = parse_sql(
        "SELECT a, SUM(b) FROM R GROUP BY a HAVING SUM(c) >= 10 AND COUNT(*) > 1"
    )
    assert parsed.having == ["SUM(c) >= 10", "COUNT(*) > 1"]


def test_parse_sql_keeps_subquery_conditions_whole():
    parsed = parse_sql(
        "SELECT SUM(a) FROM R WHERE b < (SELECT SUM(x) FROM S WHERE x > 1 AND x < 9) AND c > 0"
    )
    assert len(parsed.conditions) == 2
    assert "SELECT" in parsed.conditions[0].upper()


def test_uncorrelated_subquery_translates_to_nested_aggregate():
    schema = {"R": ("a", "b"), "S": ("g", "x")}
    query = sql_to_agca("SELECT SUM(b) FROM R WHERE b < (SELECT SUM(x) FROM S)", schema)
    text = to_string(query)
    assert "Sum(" in text and "S(" in text
    # The subquery's variables are kept distinct from the outer query's.
    assert "__s1_" in text


def test_correlated_subquery_shares_the_outer_variable():
    schema = {"R": ("a", "b"), "S": ("g", "x")}
    query = sql_to_agca(
        "SELECT r.a, SUM(r.b) FROM R r "
        "WHERE r.b < (SELECT SUM(s.x) FROM S s WHERE s.g = r.a) GROUP BY r.a",
        schema,
    )
    text = to_string(query)
    assert "= a)" in text.replace("r_", ""), text


def test_having_aggregate_ranges_over_the_group(customers_db):
    # Nations have 2 (FRANCE), 1 (GERMANY) and 3 (JAPAN) customers.
    keep = sql_to_agca(
        "SELECT nation, COUNT(*) FROM C GROUP BY nation HAVING COUNT(*) > 1",
        CUSTOMER_SCHEMA,
    )
    assert len(evaluate(keep, customers_db).support()) == 2
    only_japan = sql_to_agca(
        "SELECT nation, COUNT(*) FROM C GROUP BY nation HAVING COUNT(*) > 2",
        CUSTOMER_SCHEMA,
    )
    [record] = evaluate(only_japan, customers_db).support()
    assert record["nation"] == "JAPAN"
    drop = sql_to_agca(
        "SELECT nation, COUNT(*) FROM C GROUP BY nation HAVING COUNT(*) > 3",
        CUSTOMER_SCHEMA,
    )
    assert evaluate(drop, customers_db).is_zero()


def test_subquery_and_having_queries_compile_and_maintain():
    """The new SQL surface runs end to end on the compiled backends."""
    import random

    from repro.gmr.database import delete, insert
    from repro.ivm.naive import NaiveReevaluation
    from repro.ivm.recursive import RecursiveIVM

    schema = {"Sales": ("store", "amount")}
    sqls = [
        "SELECT store, SUM(amount) FROM Sales "
        "WHERE amount < (SELECT SUM(amount) FROM Sales) GROUP BY store",
        "SELECT store, SUM(amount) FROM Sales GROUP BY store HAVING COUNT(*) > 2",
    ]
    rng = random.Random(23)
    for sql in sqls:
        query = sql_to_agca(sql, schema)
        engine = RecursiveIVM(query, schema, backend="generated")
        reference = NaiveReevaluation(query, schema)
        live = []
        for position in range(180):
            if live and rng.random() < 0.3:
                update = delete(*live.pop(rng.randrange(len(live))))
            else:
                row = ("Sales", rng.randrange(4), rng.randrange(8))
                live.append(row)
                update = insert(*row)
            engine.apply(update)
            reference.apply(update)
            if position % 19 == 0 or position == 179:
                assert engine.result() == reference.result(), (sql, position)


def test_subquery_error_cases():
    schema = {"R": ("a", "b"), "S": ("g", "x")}
    with pytest.raises(ParseError):
        # Grouped subqueries are not scalar.
        sql_to_agca(
            "SELECT SUM(b) FROM R WHERE b < (SELECT g, SUM(x) FROM S GROUP BY g)", schema
        )
