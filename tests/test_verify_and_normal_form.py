"""Static trigger-IR verifier, ring normal form, and shard-race detector.

The verifier tests corrupt hand-built programs one invariant at a time and
assert the typed error carries the offending statement's context; the normal
form tests pin down AC merging, ±ΔR cancellation, and the AC-canonical map
identity; the shard-race tests cover both the detector's hazard rule on
hand-built programs and the end-to-end routing of a compiled self-join onto
the serial fold path.
"""

import pytest

from repro.analysis.ir_lint import lint_program, main as lint_main
from repro.compiler.compile import compile_query
from repro.compiler.cost import statement_cost_class
from repro.compiler.indexes import compute_index_specs
from repro.compiler.maps import MapDefinition
from repro.compiler.normal_form import (
    ac_canonical_map_key,
    factor_sort_key,
    is_normalized,
    normalize_rhs,
    normalizes_to_zero,
)
from repro.compiler.triggers import Statement, Trigger, TriggerProgram
from repro.compiler.verify import (
    IRVerificationError,
    detect_shard_races,
    iter_violations,
    mark_serial_folds,
    verify_program,
)
from repro.core.ast import MapRef, Mul, Rel, Var
from repro.core.normalization import combine_sorted, to_polynomial
from repro.core.parser import parse
from repro.session.catalog import MapCatalog

SCHEMA = {"R": ("A",), "S": ("B",)}


def _program(maps, triggers, result="q"):
    return TriggerProgram(
        result_map=result,
        maps=maps,
        triggers=triggers,
        schema=dict(SCHEMA),
    )


def _map(name, keys, body, level=0):
    return MapDefinition(name=name, key_vars=tuple(keys), definition=body, level=level)


def _trigger(relation, args, statements):
    return Trigger(
        relation=relation,
        sign=1,
        argument_names=tuple(args),
        statements=tuple(statements),
    )


class TestVerifier:
    def test_bad_read_arity_raises_with_statement_context(self):
        maps = {
            "q": _map("q", (), Rel("R", ("x",))),
            "q_m1": _map("q_m1", ("k0",), Rel("R", ("k0",)), level=1),
        }
        bad = Statement(target="q", target_keys=(), rhs=MapRef("q_m1", ("__d_R_0", "extra")))
        program = _program(maps, {("R", 1): _trigger("R", ("__d_R_0", "extra"), [bad])})
        with pytest.raises(IRVerificationError) as excinfo:
            verify_program(program)
        message = str(excinfo.value)
        assert "arity" in message
        assert "q_m1" in message
        assert bad.describe() in message

    def test_delta_map_write_raises(self):
        maps = {"q": _map("q", (), Rel("R", ("x",)))}
        bad = Statement(target="__delta__R", target_keys=("k0",), rhs=Var("__d_R_0"))
        program = _program(maps, {("R", 1): _trigger("R", ("__d_R_0",), [bad])})
        with pytest.raises(IRVerificationError) as excinfo:
            verify_program(program)
        assert "delta" in str(excinfo.value)

    def test_cyclic_map_definitions_raise(self):
        maps = {
            "q": _map("q", (), MapRef("q_m1", ())),
            "q_m1": _map("q_m1", (), MapRef("q_m2", ()), level=1),
            "q_m2": _map("q_m2", (), MapRef("q_m1", ()), level=2),
        }
        program = _program(maps, {})
        violations = iter_violations(program)
        assert any(violation.kind == "cyclic-dependency" for violation in violations)
        with pytest.raises(IRVerificationError):
            verify_program(program)

    def test_free_variable_raises(self):
        maps = {"q": _map("q", (), Rel("R", ("x",)))}
        # ``loose`` is neither a trigger argument nor a target key.
        bad = Statement(target="q", target_keys=(), rhs=Var("loose"))
        program = _program(maps, {("R", 1): _trigger("R", ("__d_R_0",), [bad])})
        violations = iter_violations(program)
        assert any(violation.kind == "free-variable" for violation in violations)

    def test_unknown_map_read_raises(self):
        maps = {"q": _map("q", (), Rel("R", ("x",)))}
        bad = Statement(target="q", target_keys=(), rhs=MapRef("nowhere", ("__d_R_0",)))
        program = _program(maps, {("R", 1): _trigger("R", ("__d_R_0",), [bad])})
        violations = iter_violations(program)
        assert any(violation.kind == "unknown-map" for violation in violations)

    def test_compiled_programs_verify_clean(self):
        for text, schema in [
            ("Sum(R(x) * R(y) * (x = y))", {"R": ("A",)}),
            ("AggSum([a], R(a, b) * S(b, d) * d)", {"R": ("A", "B"), "S": ("C", "D")}),
        ]:
            program = compile_query(parse(text), schema, name="v")
            assert iter_violations(program) == []


class TestNormalForm:
    def test_ac_equal_monomials_merge(self):
        merged = normalize_rhs(parse("R(x) * S(y) + S(y) * R(x)"))
        polynomial = to_polynomial(merged)
        assert len(polynomial) == 1
        assert polynomial[0].coefficient == 2

    def test_plus_minus_delta_cancels_to_zero(self):
        assert normalizes_to_zero(parse("R(x) * S(y) + (0 - 1) * S(y) * R(x)"))
        assert not normalizes_to_zero(parse("R(x) * S(y) + S(y) * R(x)"))

    def test_combine_sorted_merges_coefficients(self):
        polynomial = to_polynomial(parse("3 * R(x) + 2 * R(x)"))
        combined = combine_sorted(polynomial, factor_sort_key)
        assert len(combined) == 1
        assert combined[0].coefficient == 5

    def test_is_normalized_detects_mergeable_terms(self):
        raw = parse("R(x) * S(y) + S(y) * R(x)")
        assert not is_normalized(raw)
        assert is_normalized(normalize_rhs(raw))

    def test_ac_canonical_map_key_unifies_commuted_definitions(self):
        forward = _map("a", ("k0",), Mul((Rel("R", ("k0",)), Rel("S", ("k0",)))))
        commuted = _map("b", ("j0",), Mul((Rel("S", ("j0",)), Rel("R", ("j0",)))))
        assert ac_canonical_map_key(forward) == ac_canonical_map_key(commuted)

    def test_ac_canonical_map_key_keeps_key_positions(self):
        # Key ORDER is storage layout: [k0, k1] vs [k1, k0] must NOT unify,
        # because the catalog rewrites map references by name only.
        ab = _map("a", ("k0", "k1"), Rel("R", ("k0", "k1")))
        ba = _map("b", ("k1", "k0"), Rel("R", ("k0", "k1")))
        assert ac_canonical_map_key(ab) != ac_canonical_map_key(ba)


class TestShardRaceDetector:
    def _aux_maps(self):
        return {
            "q": _map("q", (), MapRef("aux", ("x",))),
            "aux": _map("aux", ("k0",), Rel("R", ("k0",)), level=1),
        }

    def test_write_read_pair_marks_writer_serial(self):
        read = Statement(target="q", target_keys=(), rhs=MapRef("aux", ("__d_R_0",)))
        write = Statement(target="aux", target_keys=("k0",), rhs=Var("__d_R_0"))
        program = _program(self._aux_maps(), {("R", 1): _trigger("R", ("__d_R_0",), [read, write])})
        races = detect_shard_races(program)
        assert races[("R", 1)] == ("aux",)
        marked = mark_serial_folds(program)
        statements = marked.triggers[("R", 1)].statements
        assert [s.serial_fold for s in statements] == [False, True]

    def test_write_write_pair_marks_both_serial(self):
        first = Statement(target="aux", target_keys=("k0",), rhs=Var("__d_R_0"))
        second = Statement(target="aux", target_keys=("k0",), rhs=Var("__d_R_0"))
        program = _program(self._aux_maps(), {("R", 1): _trigger("R", ("__d_R_0",), [first, second])})
        marked = mark_serial_folds(program)
        assert all(s.serial_fold for s in marked.triggers[("R", 1)].statements)

    def test_independent_statements_stay_parallel(self):
        maps = {
            "q": _map("q", (), MapRef("other", ("x",))),
            "aux": _map("aux", ("k0",), Rel("R", ("k0",)), level=1),
            "other": _map("other", ("k0",), Rel("S", ("k0",)), level=1),
        }
        write = Statement(target="aux", target_keys=("k0",), rhs=Var("__d_R_0"))
        read_other = Statement(target="q", target_keys=(), rhs=MapRef("other", ("__d_R_0",)))
        program = _program(maps, {("R", 1): _trigger("R", ("__d_R_0",), [write, read_other])})
        assert detect_shard_races(program) == {}
        marked = mark_serial_folds(program)
        assert not any(s.serial_fold for s in marked.triggers[("R", 1)].statements)

    def test_mark_serial_folds_clears_stale_flags(self):
        write = Statement(target="aux", target_keys=("k0",), rhs=Var("__d_R_0"), serial_fold=True)
        maps = {
            "q": _map("q", (), MapRef("other", ("x",))),
            "aux": _map("aux", ("k0",), Rel("R", ("k0",)), level=1),
            "other": _map("other", ("k0",), Rel("S", ("k0",)), level=1),
        }
        program = _program(maps, {("R", 1): _trigger("R", ("__d_R_0",), [write])})
        marked = mark_serial_folds(program)
        assert not marked.triggers[("R", 1)].statements[0].serial_fold

    def test_compiled_selfjoin_routes_hazardous_folds_serial(self):
        program = compile_query(parse("Sum(R(x) * R(y) * (x = y))"), {"R": ("A",)}, name="q")
        races = detect_shard_races(program)
        assert any("q_m1" in targets for targets in races.values())
        explained = program.explain()
        assert "[serial fold]" in explained
        # The result map itself reads q_m1 but nothing reads q in the same
        # dispatch, so only the aux writer is forced serial.
        for trigger in program.triggers.values():
            for statement in trigger.statements:
                assert statement.serial_fold == (statement.target == "q_m1")


class TestCatalogACDedup:
    VIEWS = [
        ("fwd", "Sum(R(x) * S(x))"),
        ("rev", "Sum(S(y) * R(y))"),
    ]

    def _absorb_all(self, ac_dedup):
        catalog = MapCatalog(SCHEMA, ac_dedup=ac_dedup)
        for name, text in self.VIEWS:
            # normalize=False keeps each view's own factor spelling, so the
            # only unification mechanism under test is the catalog's identity.
            program = compile_query(parse(text), SCHEMA, name=name, normalize=False)
            catalog.absorb(name, program)
        return catalog

    def test_ac_identity_unifies_commuted_views(self):
        alpha_only = self._absorb_all(ac_dedup=False)
        ac = self._absorb_all(ac_dedup=True)
        assert len(ac.maps) < len(alpha_only.maps)
        assert ac.program().statement_count() < alpha_only.program().statement_count()


class TestLint:
    def test_dead_map_reported(self):
        maps = {
            "q": _map("q", (), Rel("R", ("x",))),
            "orphan": _map("orphan", ("k0",), Rel("R", ("k0",)), level=1),
        }
        write = Statement(target="orphan", target_keys=("k0",), rhs=Var("__d_R_0"))
        program = _program(maps, {("R", 1): _trigger("R", ("__d_R_0",), [write])})
        findings = lint_program(program)
        assert any(f.kind == "dead-map" and "orphan" in f.message for f in findings)

    def test_result_map_is_not_dead(self):
        program = compile_query(parse("Sum(R(x) * x)"), {"R": ("A",)}, name="q")
        assert not any(f.kind == "dead-map" for f in lint_program(program))

    def test_serial_folds_surface_as_findings(self):
        program = compile_query(parse("Sum(R(x) * R(y) * (x = y))"), {"R": ("A",)}, name="q")
        findings = lint_program(program)
        assert any(f.kind == "serial-fold" for f in findings)

    def test_statement_cost_classes_on_selfjoin(self):
        program = compile_query(parse("Sum(R(x) * R(y) * (x = y))"), {"R": ("A",)}, name="q")
        specs = compute_index_specs(program)
        classes = {
            statement_cost_class(statement, specs, trigger.argument_names)
            for trigger in program.triggers.values()
            for statement in trigger.statements
        }
        assert classes == {"O(1)"}

    def test_cost_aware_order_avoids_map_scans_on_sales_by_customer(self):
        # Regression for the cost-unaware safety order: the Lineitem triggers
        # of this three-way join used to evaluate m2[c_ck] (a whole-map scan,
        # c_ck unbound) before m3[c_ck, __d_Lineitem_0] (an indexed slice
        # that *binds* c_ck).  The cost-aware schedule flips them, so no
        # statement of the program may cost a map scan.
        from repro.sql.frontend import sql_to_agca
        from repro.workloads.schemas import SALES_SCHEMA

        aggregate = sql_to_agca(
            "SELECT c.ck, SUM(l.price * l.qty) FROM Customer c, Orders o, Lineitem l "
            "WHERE c.ck = o.ck AND o.ok = l.ok2 GROUP BY c.ck",
            SALES_SCHEMA,
        )
        program = compile_query(aggregate, SALES_SCHEMA, name="sales_revenue_by_customer")
        specs = compute_index_specs(program)
        classes = {
            statement.describe(): statement_cost_class(statement, specs, trigger.argument_names)
            for trigger in program.triggers.values()
            for statement in trigger.statements
        }
        scans = {text for text, cls in classes.items() if "map scan" in cls}
        assert not scans, scans
        batch_classes = {
            statement.describe(): statement_cost_class(statement, specs, ())
            for trigger in program.batch_triggers.values()
            for statement in trigger.statements
        }
        batch_scans = {text for text, cls in batch_classes.items() if "map scan" in cls}
        assert not batch_scans, batch_scans

    def test_lint_main_smoke(self, tmp_path, capsys):
        report_path = tmp_path / "report.txt"
        assert lint_main(["--output", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "Trigger-IR verification & lint report" in out
        assert report_path.read_text().strip() == out.strip()

    def test_lint_fail_on_promotes_findings(self, capsys):
        # serial-fold findings exist by design (self-joins race), so gating
        # them must flip the exit status; dead-maps and scan are clean after
        # the cost-aware safety order, so gating those stays green.
        assert lint_main(["--fail-on", "serial-folds"]) == 1
        out = capsys.readouterr().out
        assert "FATAL (--fail-on)" in out
        assert lint_main(["--fail-on", "dead-maps", "--fail-on", "scan"]) == 0
        capsys.readouterr()

    def test_lint_fail_on_rejects_unknown_kind(self):
        with pytest.raises(SystemExit):
            lint_main(["--fail-on", "bogus"])
