"""Tests for the workload substrate: schemas, streams, canonical queries, sales generator."""

import pytest

from repro.gmr.database import Database
from repro.workloads.queries import CANONICAL_QUERIES, CanonicalQuery, chain_count_query, query_by_name
from repro.workloads.schemas import RST_SCHEMA, SALES_SCHEMA, UNARY_SCHEMA, chain_schema
from repro.workloads.streams import StreamGenerator, apply_stream, interleave
from repro.workloads.tpch_like import NATIONS, SalesStreamGenerator


# ---------------------------------------------------------------------------
# Schemas
# ---------------------------------------------------------------------------


def test_chain_schema_shape():
    schema = chain_schema(3)
    assert schema == {"E1": ("a0", "a1"), "E2": ("a1", "a2"), "E3": ("a2", "a3")}
    with pytest.raises(ValueError):
        chain_schema(0)


# ---------------------------------------------------------------------------
# Stream generator
# ---------------------------------------------------------------------------


def test_streams_are_deterministic_given_a_seed():
    first = StreamGenerator(RST_SCHEMA, seed=5).generate(60)
    second = StreamGenerator(RST_SCHEMA, seed=5).generate(60)
    third = StreamGenerator(RST_SCHEMA, seed=6).generate(60)
    assert first.updates == second.updates
    assert first.updates != third.updates


def test_streams_only_delete_existing_tuples():
    stream = StreamGenerator(UNARY_SCHEMA, seed=8, delete_fraction=0.5).generate(300)
    db = Database(UNARY_SCHEMA)
    apply_stream(db, stream)
    # Every multiplicity stays non-negative because deletes target live tuples.
    assert all(multiplicity >= 0 for _, multiplicity in db["R"].items())
    assert stream.insert_count() + stream.delete_count() == len(stream)
    assert stream.delete_count() > 0


def test_stream_respects_arity_and_relations_filter():
    stream = StreamGenerator(RST_SCHEMA, seed=1).generate(50, relations=["S"])
    assert all(update.relation == "S" for update in stream)
    assert all(len(update.values) == 2 for update in stream)


def test_insert_only_streams_and_live_tuples():
    generator = StreamGenerator(UNARY_SCHEMA, seed=4)
    stream = generator.generate_inserts(40)
    assert stream.delete_count() == 0
    assert len(generator.live_tuples("R")) == 40
    # The delete fraction is restored afterwards.
    assert generator.delete_fraction == 0.25


def test_custom_domains_and_zipf_skew():
    generator = StreamGenerator(
        UNARY_SCHEMA,
        seed=2,
        domains={"A": ["x", "y"]},
    )
    stream = generator.generate_inserts(30)
    assert {update.values[0] for update in stream} <= {"x", "y"}

    skewed = StreamGenerator(UNARY_SCHEMA, seed=2, default_domain_size=50, zipf_s=1.5)
    values = [update.values[0] for update in skewed.generate_inserts(300)]
    # Strong skew: the most frequent value dominates a uniform share by far.
    most_common = max(set(values), key=values.count)
    assert values.count(most_common) > 3 * (300 / 50)

    callable_domain = StreamGenerator(
        UNARY_SCHEMA, seed=3, domains={"A": lambda rng: rng.choice(["only"])}
    )
    assert callable_domain.generate_inserts(5)[0].values == ("only",)


def test_update_stream_utilities():
    stream = StreamGenerator(UNARY_SCHEMA, seed=7).generate(20, description="demo")
    assert len(stream) == 20
    assert stream[0] in list(stream)
    warmup, measured = stream.split(15)
    assert len(warmup) == 15 and len(measured) == 5
    assert "warmup" in warmup.description
    merged = interleave(warmup, measured)
    assert len(merged) == 20
    assert stream.parameters["length"] == 20


# ---------------------------------------------------------------------------
# Canonical queries
# ---------------------------------------------------------------------------


def test_canonical_queries_parse_and_describe():
    assert len(CANONICAL_QUERIES) >= 8
    for query in CANONICAL_QUERIES:
        assert isinstance(query, CanonicalQuery)
        aggregate = query.aggregate
        assert aggregate is not None
        assert query.description
        assert query.name in repr(query)


def test_query_by_name_lookup():
    assert query_by_name("selfjoin_count").paper_reference == "Example 1.2"
    with pytest.raises(KeyError):
        query_by_name("does_not_exist")


def test_chain_count_query_degrees():
    from repro.core.degree import degree

    for length in (1, 2, 3, 4):
        query = chain_count_query(length)
        assert degree(query.expr) == length
        assert set(query.schema) == {f"E{i}" for i in range(1, length + 1)}


# ---------------------------------------------------------------------------
# Sales (TPC-H-flavoured) generator
# ---------------------------------------------------------------------------


def test_sales_stream_covers_all_relations_and_respects_schema():
    generator = SalesStreamGenerator(customers=8, seed=1)
    stream = generator.generate(30)
    relations = {update.relation for update in stream}
    assert relations == {"Customer", "Orders", "Lineitem"}
    db = Database(generator.schema())
    apply_stream(db, stream)
    assert all(multiplicity >= 0 for name, gmr in db for _, multiplicity in gmr.items())
    assert db.size("Customer") == 8


def test_sales_stream_contains_cancellations():
    generator = SalesStreamGenerator(customers=5, seed=2, order_cancel_fraction=0.5)
    stream = generator.generate(60)
    assert stream.delete_count() > 0
    assert stream.parameters["orders"] == 60


def test_sales_customers_cycle_through_nations():
    generator = SalesStreamGenerator(customers=len(NATIONS) * 2, seed=0)
    customer_updates = generator.customer_updates()
    nations = [update.values[1] for update in customer_updates]
    assert set(nations) == set(NATIONS)


def test_sales_generator_schema_matches_module_schema():
    assert SalesStreamGenerator().schema() == dict(SALES_SCHEMA)
